// Package fabric models the physical interconnect of a Cray XT5-class
// machine: a 3-D torus of nodes with dimension-order routing, per-link
// bandwidth serialization, per-hop latency, and NIC injection/ejection
// serialization. It substitutes for the SeaStar2+/Portals hardware the paper
// ran on: hot-spot traffic queues up at the victim node's ejection port and
// on the links leading to it, which is the physical phenomenon the paper's
// virtual topologies attenuate in software.
//
// Messages advance hop by hop in virtual time (package sim), reserving each
// link at their actual arrival instant, so FIFO contention and backpressure
// delays are modeled faithfully rather than estimated.
package fabric

import (
	"fmt"
	"math"

	"armcivt/internal/faults"
	"armcivt/internal/obs"
	"armcivt/internal/sim"
)

// Config sets the physical machine parameters. Bandwidths are in bytes per
// nanosecond (1 byte/ns = 1 GB/s).
type Config struct {
	// Shape is the torus extent per dimension; its product must cover the
	// node count. Zero value lets New pick a near-cubic shape.
	Shape [3]int
	// LinkBandwidth is the per-link bandwidth (SeaStar2+ peak ~9.6 GB/s).
	LinkBandwidth float64
	// NICBandwidth is the node injection/ejection bandwidth.
	NICBandwidth float64
	// HopLatency is per-hop propagation plus router traversal time.
	HopLatency sim.Time
	// SoftwareOverhead is the per-message send cost paid at injection
	// (Portals command issue, doorbell, descriptor setup).
	SoftwareOverhead sim.Time
	// StreamLimit is the number of distinct source nodes an ejection port
	// can serve concurrently at full rate, modeling SeaStar2+'s bounded
	// set of simultaneous message streams. Beyond it, the BEER protocol's
	// flow control and retransmission slow every transfer down.
	StreamLimit int
	// StreamPenalty is the fractional serialization slowdown added per
	// source beyond StreamLimit (0.25 means each excess concurrent source
	// adds 25% to a message's ejection time).
	StreamPenalty float64

	// CongestionThreshold, when positive, arms ECN-style congestion
	// signaling: a message is stamped congestion-experienced when its FIFO
	// queue delay at any link or ejection-port reservation reaches the
	// threshold, or when it arrives at an ejection port already past its
	// StreamLimit (the port's occupancy tracking reports overload before
	// queue delay accumulates). SendMarked reports the mark to the delivery
	// callback (the armci runtime echoes it to the origin on the response,
	// driving AIMD injection pacing). Zero (the default) disables marking
	// and leaves every code path bit-identical.
	CongestionThreshold sim.Time

	// Faults, when non-nil, makes routing and link traversal consult the
	// injector: hard-failed links stall in-flight messages and steer fresh
	// routes onto the opposite ring arc, degraded links stretch their
	// serialization time, and storm bursts stretch a hot node's ejection
	// serialization. Nil (the default) leaves every code path
	// bit-identical to the fault-free model.
	Faults *faults.Injector
	// LinkRetry is how often a message parked at a failed link re-probes it.
	LinkRetry sim.Time
	// LinkStallLimit caps how long a message waits at a failed link before
	// the fabric drops it (the runtime's timeout machinery recovers it).
	LinkStallLimit sim.Time
}

// DefaultConfig returns XT5-flavoured parameters and a near-cubic torus
// shape for n nodes.
func DefaultConfig(n int) Config {
	return Config{
		Shape:            TorusShape(n),
		LinkBandwidth:    9.6,
		NICBandwidth:     2.0,
		HopLatency:       100 * sim.Nanosecond,
		SoftwareOverhead: 1 * sim.Microsecond,
		StreamLimit:      32,
		StreamPenalty:    0.25,
	}
}

// BlueGenePConfig returns parameters flavoured after the IBM Blue Gene/P
// interconnect the paper names as future work: a 3-D torus with much slower
// links (425 MB/s) but a lower-overhead DMA path and a hardware-managed
// injection FIFO that tolerates more concurrent streams. Virtual-topology
// experiments run against it to check that contention attenuation is not an
// XT5 artifact.
func BlueGenePConfig(n int) Config {
	return Config{
		Shape:            TorusShape(n),
		LinkBandwidth:    0.425,
		NICBandwidth:     0.85,
		HopLatency:       64 * sim.Nanosecond,
		SoftwareOverhead: 600 * sim.Nanosecond,
		StreamLimit:      64,
		StreamPenalty:    0.125,
	}
}

// TorusShape factors n into three near-equal extents whose product covers n.
func TorusShape(n int) [3]int {
	if n < 1 {
		n = 1
	}
	x := int(math.Ceil(math.Cbrt(float64(n))))
	if x < 1 {
		x = 1
	}
	y := int(math.Ceil(math.Sqrt(float64(n) / float64(x))))
	if y < 1 {
		y = 1
	}
	z := (n + x*y - 1) / (x * y)
	if z < 1 {
		z = 1
	}
	return [3]int{x, y, z}
}

// link is a directed physical channel with FIFO bandwidth reservation.
type link struct {
	nextFree sim.Time
	busy     sim.Time // accumulated serialization time
	msgs     uint64
}

// reserve books the link for a transfer of ser duration arriving at t and
// returns the instant transmission starts.
func (l *link) reserve(t sim.Time, ser sim.Time) sim.Time {
	start := t
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + ser
	l.busy += ser
	l.msgs++
	return start
}

// Stats aggregates fabric-wide counters. Internally the network keeps one
// Stats per torus position — each mutated only by events owned by that
// position, which is what lets shard workers update them without locks —
// and Stats() merges them (sums, and maxima for the two high-water marks).
type Stats struct {
	Messages     uint64
	Bytes        uint64
	MaxQueueWait sim.Time // worst single-link queue delay observed
	MaxStreams   int      // most distinct sources concurrently queued at one ejection port
	LinkStalls   uint64   // messages that parked at a hard-failed link
	Reroutes     uint64   // routes steered onto the long ring arc around a failure
	Dropped      uint64   // messages dropped after LinkStallLimit at a failed link
	NodeDrops    uint64   // messages dropped because their source or destination node crashed
	CEMarks      uint64   // congestion-experienced marks stamped at hot links/ports (CongestionThreshold > 0)
}

// Network is a simulated torus interconnect for n nodes.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	n     int
	shape [3]int
	// Directed links: index (node*6 + dim*2 + dir), dir 0 = minus, 1 = plus.
	links []link
	// NIC injection (inj) and ejection (ej) ports per node.
	inj []link
	ej  []link
	// ejSources[node] counts queued messages per source node at the
	// ejection port, for the stream-overload model.
	ejSources []map[int]int
	// stats[pos] holds the counters attributed to torus position pos; see
	// the Stats doc comment.
	stats []Stats

	// msgFree[pos] is position pos's free list of recycled message records.
	// Like stats, each entry is touched only by events owned by that
	// position (records are taken in the sender's context and released in
	// the context of the position where the message ends), so shard workers
	// recycle without locks.
	msgFree [][]*msg
	// Stored step functions for the pooled walk: allocated once here so the
	// per-hop schedule calls (AtFromArg and friends) carry a long-lived func
	// value plus a *msg and allocate nothing.
	stepFn, injectFn, loopFn, ejectFn, stallFn func(any)

	// Observability (nil when disabled): per-port queue-wait histograms,
	// resolved once at Instrument time so the hot path pays one nil check.
	reg       *obs.Registry
	waitInj   *obs.Histogram
	waitLink  *obs.Histogram
	waitEj    *obs.Histogram
	waitStall *obs.Histogram
}

// New creates a network of n nodes on engine e. A zero-value cfg field is
// replaced by its default.
func New(e *sim.Engine, n int, cfg Config) *Network {
	def := DefaultConfig(n)
	if cfg.Shape == ([3]int{}) {
		cfg.Shape = def.Shape
	}
	if cfg.LinkBandwidth <= 0 {
		cfg.LinkBandwidth = def.LinkBandwidth
	}
	if cfg.NICBandwidth <= 0 {
		cfg.NICBandwidth = def.NICBandwidth
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = def.HopLatency
	}
	if cfg.SoftwareOverhead <= 0 {
		cfg.SoftwareOverhead = def.SoftwareOverhead
	}
	if cfg.StreamLimit <= 0 {
		cfg.StreamLimit = def.StreamLimit
	}
	if cfg.StreamPenalty <= 0 {
		cfg.StreamPenalty = def.StreamPenalty
	}
	if cfg.LinkRetry <= 0 {
		cfg.LinkRetry = 2 * sim.Microsecond
	}
	if cfg.LinkStallLimit <= 0 {
		cfg.LinkStallLimit = 10 * sim.Millisecond
	}
	if cfg.Shape[0]*cfg.Shape[1]*cfg.Shape[2] < n {
		panic(fmt.Sprintf("fabric: shape %v cannot hold %d nodes", cfg.Shape, n))
	}
	// Links exist for every torus coordinate: when the job does not fill
	// the torus, routes still pass through the unpopulated positions'
	// routers (on the real machine those nodes belong to other jobs).
	capacity := cfg.Shape[0] * cfg.Shape[1] * cfg.Shape[2]
	nw := &Network{
		eng:       e,
		cfg:       cfg,
		n:         n,
		shape:     cfg.Shape,
		links:     make([]link, capacity*6),
		inj:       make([]link, n),
		ej:        make([]link, n),
		ejSources: make([]map[int]int, n),
		stats:     make([]Stats, capacity),
		msgFree:   make([][]*msg, capacity),
	}
	for i := range nw.ejSources {
		nw.ejSources[i] = make(map[int]int)
	}
	nw.stepFn = func(a any) { nw.step(a.(*msg)) }
	nw.injectFn = func(a any) { nw.inject(a.(*msg)) }
	nw.loopFn = func(a any) { nw.loop(a.(*msg)) }
	nw.ejectFn = func(a any) { nw.eject(a.(*msg)) }
	nw.stallFn = func(a any) { m := a.(*msg); nw.stallAt(m.path[m.i]/6, m, m.arrive) }
	return nw
}

// Nodes returns the node count.
func (nw *Network) Nodes() int { return nw.n }

// Config returns the effective configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Stats returns the aggregate counters, merged across torus positions.
func (nw *Network) Stats() Stats {
	var out Stats
	for i := range nw.stats {
		s := &nw.stats[i]
		out.Messages += s.Messages
		out.Bytes += s.Bytes
		if s.MaxQueueWait > out.MaxQueueWait {
			out.MaxQueueWait = s.MaxQueueWait
		}
		if s.MaxStreams > out.MaxStreams {
			out.MaxStreams = s.MaxStreams
		}
		out.LinkStalls += s.LinkStalls
		out.Reroutes += s.Reroutes
		out.Dropped += s.Dropped
		out.NodeDrops += s.NodeDrops
		out.CEMarks += s.CEMarks
	}
	return out
}

// Capacity returns the number of torus positions (>= Nodes): when the job
// does not fill the torus, routes still pass through unpopulated positions'
// routers, so the sharded engine's owner space must cover all of them.
func (nw *Network) Capacity() int { return len(nw.links) / 6 }

// Lookahead returns the conservative-parallel synchronization window this
// fabric guarantees: every event that crosses torus positions — hop to hop,
// last hop to ejection — is scheduled at least one HopLatency in the
// future, so it is the minimum cross-shard event-creation gap.
func (nw *Network) Lookahead() sim.Time { return nw.cfg.HopLatency }

// ShardOf returns the topology-aware position→shard partition for `shards`
// shards: contiguous position-id slabs of near-equal size. Position ids are
// x-major, so a slab is a stack of whole xy-planes (plus partial planes at
// its edges); dimension-order routes resolve x and y before z, which keeps
// most hops of a route inside the slab that contains its source plane and
// confines shard crossings to the final z leg.
func (nw *Network) ShardOf(shards int) func(pos int) int {
	capacity := nw.Capacity()
	return func(pos int) int {
		s := pos * shards / capacity
		if s >= shards {
			s = shards - 1
		}
		return s
	}
}

// Coord maps a node ID to its torus coordinates.
func (nw *Network) Coord(node int) [3]int {
	return [3]int{
		node % nw.shape[0],
		node / nw.shape[0] % nw.shape[1],
		node / (nw.shape[0] * nw.shape[1]) % nw.shape[2],
	}
}

// Hops returns the dimension-order path length between two nodes with torus
// wraparound.
func (nw *Network) Hops(a, b int) int {
	ca, cb := nw.Coord(a), nw.Coord(b)
	total := 0
	for d := 0; d < 3; d++ {
		dist := ca[d] - cb[d]
		if dist < 0 {
			dist = -dist
		}
		if wrap := nw.shape[d] - dist; wrap < dist {
			dist = wrap
		}
		total += dist
	}
	return total
}

// route appends to buf the sequence of (node, dim, dir) link indices from
// src to dst under dimension-order torus routing, returning the extended
// slice. Callers on the hot path hand back a recycled buffer (buf[:0]) so
// routing allocates only until the buffer has grown to the workload's
// longest path.
func (nw *Network) route(src, dst int, buf []int) []int {
	if src == dst {
		return buf
	}
	out := buf
	cur := nw.Coord(src)
	tgt := nw.Coord(dst)
	strides := [3]int{1, nw.shape[0], nw.shape[0] * nw.shape[1]}
	node := src
	for d := 0; d < 3; d++ {
		for cur[d] != tgt[d] {
			fwd := (tgt[d] - cur[d] + nw.shape[d]) % nw.shape[d]
			bwd := nw.shape[d] - fwd
			dir := 1 // plus
			if bwd < fwd {
				dir = 0
			}
			out = append(out, node*6+d*2+dir)
			if dir == 1 {
				cur[d] = (cur[d] + 1) % nw.shape[d]
			} else {
				cur[d] = (cur[d] - 1 + nw.shape[d]) % nw.shape[d]
			}
			node = cur[0]*strides[0] + cur[1]*strides[1] + cur[2]*strides[2]
		}
	}
	return out
}

// linkEnds returns the torus positions joined by directed link idx.
func (nw *Network) linkEnds(idx int) (from, to int) {
	from = idx / 6
	d := (idx % 6) / 2
	c := nw.Coord(from)
	if idx%2 == 1 {
		c[d] = (c[d] + 1) % nw.shape[d]
	} else {
		c[d] = (c[d] - 1 + nw.shape[d]) % nw.shape[d]
	}
	to = c[0] + c[1]*nw.shape[0] + c[2]*nw.shape[0]*nw.shape[1]
	return from, to
}

// arcBlocked reports whether walking dist steps from start along dimension d
// in direction dir crosses a currently hard-failed link.
func (nw *Network) arcBlocked(start, d, dir, dist int) bool {
	fi := nw.cfg.Faults
	cur := nw.Coord(start)
	node := start
	for s := 0; s < dist; s++ {
		next := cur
		if dir == 1 {
			next[d] = (cur[d] + 1) % nw.shape[d]
		} else {
			next[d] = (cur[d] - 1 + nw.shape[d]) % nw.shape[d]
		}
		nb := next[0] + next[1]*nw.shape[0] + next[2]*nw.shape[0]*nw.shape[1]
		if fi.LinkDown(node, nb) {
			return true
		}
		cur, node = next, nb
	}
	return false
}

// routeFaultAware is dimension-order routing that reacts to hard link
// failures: in each dimension it picks a ring arc once, preferring the
// shorter one but taking the long way round when only the short arc crosses
// a failed link. Choosing per dimension (never mid-arc) keeps routes minimal
// per dimension and rules out ping-pong livelock. With no active faults it
// returns exactly the same path as route. Like route it appends to buf.
func (nw *Network) routeFaultAware(src, dst int, buf []int) []int {
	if src == dst {
		return buf
	}
	out := buf
	cur := nw.Coord(src)
	tgt := nw.Coord(dst)
	strides := [3]int{1, nw.shape[0], nw.shape[0] * nw.shape[1]}
	node := src
	for d := 0; d < 3; d++ {
		if cur[d] == tgt[d] {
			continue
		}
		fwd := (tgt[d] - cur[d] + nw.shape[d]) % nw.shape[d]
		bwd := nw.shape[d] - fwd
		dir, dist := 1, fwd
		if bwd < fwd {
			dir, dist = 0, bwd
		}
		if nw.arcBlocked(node, d, dir, dist) {
			altDir, altDist := 1-dir, nw.shape[d]-dist
			if altDist > 0 && !nw.arcBlocked(node, d, altDir, altDist) {
				dir, dist = altDir, altDist
				nw.stats[src].Reroutes++
			}
		}
		for s := 0; s < dist; s++ {
			out = append(out, node*6+d*2+dir)
			if dir == 1 {
				cur[d] = (cur[d] + 1) % nw.shape[d]
			} else {
				cur[d] = (cur[d] - 1 + nw.shape[d]) % nw.shape[d]
			}
			node = cur[0]*strides[0] + cur[1]*strides[1] + cur[2]*strides[2]
		}
	}
	return out
}

// msg is a pooled in-flight message record. One is taken from the sender
// position's free list per Send, advanced hop by hop by the stored step
// functions (stepFn and friends) instead of a fresh closure per hop, and
// released to the free list of the position where the message ends —
// delivery, drop, or stall-limit expiry. The path buffer is retained across
// recycles, so a steady-state workload routes without allocating.
type msg struct {
	path       []int    // reused route buffer (link indices)
	i          int      // next path index to traverse
	arrive     sim.Time // when the message reaches the next step (or retries a stall)
	serLink    sim.Time // per-link serialization time
	serNIC     sim.Time // NIC serialization time
	stallSince sim.Time // when the message first parked at a failed link
	src, dst   int
	ce         bool // congestion-experienced mark accumulated so far
	freed      bool // double-release guard
	// Exactly one delivery callback is set, matching the Send variant used.
	deliver     func(ce bool)          // SendMarked
	deliverNoCE func()                 // Send
	deliverArg  func(arg any, ce bool) // SendArg
	darg        any
}

// getMsg takes a recycled record from position pos's free list (allocating
// when empty). It must run in pos's owner context or with workers quiesced.
func (nw *Network) getMsg(pos int) *msg {
	fl := nw.msgFree[pos]
	if n := len(fl); n > 0 {
		m := fl[n-1]
		nw.msgFree[pos] = fl[:n-1]
		m.freed = false
		return m
	}
	return &msg{}
}

// putMsg zeroes m (keeping its path buffer) and releases it to position
// pos's free list. Releasing twice panics.
func (nw *Network) putMsg(pos int, m *msg) {
	if m.freed {
		panic("fabric: message record released twice")
	}
	path := m.path[:0]
	*m = msg{path: path, freed: true}
	nw.msgFree[pos] = append(nw.msgFree[pos], m)
}

// finish releases m to pos's free list and then invokes its delivery
// callback — in that order, so a delivery that immediately Sends from pos
// reuses the record it just completed.
func (nw *Network) finish(pos int, m *msg) {
	ce := m.ce
	dCE, d0, dA, darg := m.deliver, m.deliverNoCE, m.deliverArg, m.darg
	nw.putMsg(pos, m)
	switch {
	case dCE != nil:
		dCE(ce)
	case d0 != nil:
		d0()
	default:
		dA(darg, ce)
	}
}

// Send injects a message of size bytes from node src to node dst and calls
// deliver (in engine context, as owner dst) when the last byte is ejected at
// dst. It must be called from src's owner context (a process or event of
// node src) or from coordinator/serial context. Loopback (src == dst) pays
// only the software overhead.
func (nw *Network) Send(src, dst, size int, deliver func()) {
	nw.send(src, dst, size, nil, deliver, nil, nil)
}

// SendMarked is Send with ECN-style congestion signaling: deliver receives
// true when the message's queue delay at any link or ejection-port
// reservation along the way reached Config.CongestionThreshold, or when the
// destination's ejection port was past its StreamLimit as the message
// arrived. With the threshold unset (zero) the mark is always false and the
// schedule is bit-identical to Send.
func (nw *Network) SendMarked(src, dst, size int, deliver func(ce bool)) {
	nw.send(src, dst, size, deliver, nil, nil, nil)
}

// SendArg is the allocation-free form of SendMarked: deliver must be a
// long-lived func value (stored once by the caller, not built per send) and
// arg the per-message state, already pointer-shaped so the any conversion
// does not allocate. Timing, marking, and fault behaviour are identical to
// SendMarked.
func (nw *Network) SendArg(src, dst, size int, deliver func(arg any, ce bool), arg any) {
	nw.send(src, dst, size, nil, nil, deliver, arg)
}

func (nw *Network) send(src, dst, size int, dCE func(bool), d0 func(), dA func(any, bool), darg any) {
	if src < 0 || src >= nw.n || dst < 0 || dst >= nw.n {
		panic(fmt.Sprintf("fabric: Send %d->%d out of range [0,%d)", src, dst, nw.n))
	}
	if size < 0 {
		panic("fabric: negative message size")
	}
	st := &nw.stats[src]
	st.Messages++
	st.Bytes += uint64(size)
	m := nw.getMsg(src)
	m.src, m.dst = src, dst
	m.deliver, m.deliverNoCE, m.deliverArg, m.darg = dCE, d0, dA, darg
	if src == dst {
		nw.eng.AfterOnArg(src, nw.cfg.SoftwareOverhead, nw.loopFn, m)
		return
	}
	m.serLink = sim.Time(float64(size) / nw.cfg.LinkBandwidth)
	m.serNIC = sim.Time(float64(size) / nw.cfg.NICBandwidth)
	nw.eng.AfterOnArg(src, nw.cfg.SoftwareOverhead, nw.injectFn, m)
}

// loop completes a loopback message after the software overhead.
func (nw *Network) loop(m *msg) {
	src := m.src
	if nw.cfg.Faults != nil && nw.cfg.Faults.NodeDown(src) {
		nw.stats[src].NodeDrops++
		nw.putMsg(src, m)
		return
	}
	nw.finish(src, m)
}

// inject runs at src after the software overhead: it resolves the route —
// at injection time so it reflects the fault state then, not at the Send
// call — reserves the injection NIC, and schedules the first walk step.
func (nw *Network) inject(m *msg) {
	src, dst := m.src, m.dst
	if nw.cfg.Faults != nil {
		// A crashed source NIC injects nothing: anything its software
		// stack had queued dies with the node.
		if nw.cfg.Faults.NodeDown(src) {
			nw.stats[src].NodeDrops++
			nw.putMsg(src, m)
			return
		}
		m.path = nw.routeFaultAware(src, dst, m.path[:0])
	} else {
		m.path = nw.route(src, dst, m.path[:0])
	}
	m.i = 0
	now := nw.eng.NowOn(src)
	start := nw.inj[src].reserve(now, m.serNIC)
	nw.noteWait(src, start-now, nw.waitInj)
	m.arrive = start + m.serNIC + nw.cfg.HopLatency
	nw.scheduleStep(src, m)
}

// marked reports whether a queue delay of wait at position pos crosses the
// congestion threshold, counting the mark against pos. Disabled (threshold
// zero) it is a single comparison and never marks.
func (nw *Network) marked(pos int, wait sim.Time) bool {
	if th := nw.cfg.CongestionThreshold; th > 0 && wait >= th {
		nw.stats[pos].CEMarks++
		return true
	}
	return false
}

// scheduleStep schedules m's next step — traversal of link path[i], or
// ejection at dst once the path is exhausted — at m.arrive. It must be
// called in the context of owner `from` (the torus position the message is
// leaving); each step's event is owned by the position whose link or port it
// reserves, so shard workers only ever touch their own links. Every step is
// scheduled at least HopLatency ahead, the bound Lookahead() reports.
func (nw *Network) scheduleStep(from int, m *msg) {
	hop := m.dst
	if m.i < len(m.path) {
		hop = m.path[m.i] / 6
	}
	nw.eng.AtFromArg(from, hop, m.arrive, nw.stepFn, m)
}

// step executes one walk step at its owning position: a link traversal when
// path remains, the ejection-port reservation otherwise.
func (nw *Network) step(m *msg) {
	now := m.arrive
	if m.i < len(m.path) {
		li := m.path[m.i]
		hop := li / 6
		ser := m.serLink
		if fi := nw.cfg.Faults; fi != nil {
			a, b := nw.linkEnds(li)
			if fi.LinkDown(a, b) {
				nw.stats[hop].LinkStalls++
				m.stallSince = now
				nw.stallAt(hop, m, now)
				return
			}
			if f := fi.LinkFactor(a, b); f < 1 {
				ser = sim.Time(float64(m.serLink) / f)
			}
		}
		start := nw.links[li].reserve(now, ser)
		nw.noteWait(hop, start-now, nw.waitLink)
		m.ce = nw.marked(hop, start-now) || m.ce
		m.i++
		m.arrive = start + ser + nw.cfg.HopLatency
		nw.scheduleStep(hop, m)
		return
	}
	src, dst := m.src, m.dst
	// A crashed destination NIC ejects nothing: the message has
	// traversed the torus (SeaStar routers forward in hardware) but
	// dies at the dead node's ejection port.
	if fi := nw.cfg.Faults; fi != nil && fi.NodeDown(dst) {
		nw.stats[dst].NodeDrops++
		nw.putMsg(dst, m)
		return
	}
	// Ejection with the stream-overload model: the port slows down
	// when more distinct sources than StreamLimit are queued, the
	// BEER-throttling behaviour hot-spot nodes exhibit on the XT5.
	st := &nw.stats[dst]
	srcs := nw.ejSources[dst]
	srcs[src]++
	if n := len(srcs); n > st.MaxStreams {
		st.MaxStreams = n
	}
	ser := m.serNIC
	if excess := len(srcs) - nw.cfg.StreamLimit; excess > 0 {
		ser += sim.Time(float64(m.serNIC) * nw.cfg.StreamPenalty * float64(excess))
	}
	// RED-style early marking: the port's deterministic occupancy
	// tracking stamps congestion-experienced once more than half the
	// stream limit's worth of distinct sources are resident. Marking at
	// half the penalty cliff — rather than at it — leaves origins a
	// reaction round trip to widen their injection gaps before the
	// stream-overload penalty engages; a signal that only fires once the
	// penalty is already being paid arrives too late to prevent it.
	if nw.cfg.CongestionThreshold > 0 && 2*len(srcs) > nw.cfg.StreamLimit {
		st.CEMarks++
		m.ce = true
	}
	// A storm fault saturates the node's ejection path with burst
	// traffic from outside the model; every real transfer serializes
	// slower while the burst window is open.
	if fi := nw.cfg.Faults; fi != nil {
		if f := fi.StormFactor(dst); f > 1 {
			ser = sim.Time(float64(ser) * f)
		}
	}
	start := nw.ej[dst].reserve(now, ser)
	nw.noteWait(dst, start-now, nw.waitEj)
	m.ce = nw.marked(dst, start-now) || m.ce
	nw.eng.AtOnArg(dst, start+ser, nw.ejectFn, m)
}

// eject completes ejection at dst: the source's stream-occupancy entry is
// retired and the message delivered (or lost, if dst crashed mid-ejection).
func (nw *Network) eject(m *msg) {
	src, dst := m.src, m.dst
	srcs := nw.ejSources[dst]
	if srcs[src] <= 1 {
		delete(srcs, src)
	} else {
		srcs[src]--
	}
	// The node can crash mid-ejection; the partially ejected
	// message is lost with it.
	if fi := nw.cfg.Faults; fi != nil && fi.NodeDown(dst) {
		nw.stats[dst].NodeDrops++
		nw.putMsg(dst, m)
		return
	}
	nw.finish(dst, m)
}

// stallAt parks a message in front of the hard-failed link m.path[m.i]
// (whose from-position pos owns these events), re-probing every LinkRetry
// until the link repairs — at which point the walk resumes and the total
// stall time is recorded — or LinkStallLimit elapses and the message is
// dropped. Dropping instead of waiting forever keeps the event queue finite;
// the runtime's request timeouts retransmit the payload.
func (nw *Network) stallAt(pos int, m *msg, now sim.Time) {
	a, b := nw.linkEnds(m.path[m.i])
	if !nw.cfg.Faults.LinkDown(a, b) {
		nw.noteWait(pos, now-m.stallSince, nw.waitStall)
		m.arrive = now
		nw.scheduleStep(pos, m)
		return
	}
	if now-m.stallSince >= nw.cfg.LinkStallLimit {
		nw.stats[pos].Dropped++
		nw.putMsg(pos, m)
		return
	}
	m.arrive = now + nw.cfg.LinkRetry
	nw.eng.AtOnArg(pos, m.arrive, nw.stallFn, m)
}

func (nw *Network) noteWait(pos int, w sim.Time, h *obs.Histogram) {
	if w > nw.stats[pos].MaxQueueWait {
		nw.stats[pos].MaxQueueWait = w
	}
	if h != nil {
		h.Observe(w.Micros())
	}
}

// LinkBusy returns total serialization time accumulated on all links leaving
// node, a utilization signal for tests.
func (nw *Network) LinkBusy(node int) sim.Time {
	var t sim.Time
	for d := 0; d < 6; d++ {
		t += nw.links[node*6+d].busy
	}
	return t
}

// EjectionBusy returns total serialization time at node's ejection port; the
// hot-spot node in the contention experiments shows this saturating.
func (nw *Network) EjectionBusy(node int) sim.Time { return nw.ej[node].busy }

// EjectionMsgs returns how many messages were delivered to node.
func (nw *Network) EjectionMsgs(node int) uint64 { return nw.ej[node].msgs }

// linkNames labels the six directed links leaving a torus node, lowest
// dimension first, minus direction before plus.
var linkNames = [6]string{"x-", "x+", "y-", "y+", "z-", "z+"}

// Instrument enables the fabric's observability: per-port queue-wait
// histograms (fabric_port_wait_us) are recorded during the run, and
// FillMetrics exports the aggregate counters plus per-link/NIC utilization
// of the hottest node. A nil registry leaves the network uninstrumented
// (the default); instrumentation is passive and never changes virtual time.
func (nw *Network) Instrument(reg *obs.Registry) {
	nw.reg = reg
	if reg == nil {
		nw.waitInj, nw.waitLink, nw.waitEj, nw.waitStall = nil, nil, nil, nil
		return
	}
	nw.waitInj = reg.Histogram("fabric_port_wait_us", obs.TimeBuckets, obs.L("port", "inj"))
	nw.waitLink = reg.Histogram("fabric_port_wait_us", obs.TimeBuckets, obs.L("port", "link"))
	nw.waitEj = reg.Histogram("fabric_port_wait_us", obs.TimeBuckets, obs.L("port", "ej"))
	nw.waitStall = reg.Histogram("fabric_link_stall_wait_us", obs.TimeBuckets)
}

// HottestEjection returns the node whose ejection port accumulated the most
// serialization time — the hot-spot victim in the contention experiments.
func (nw *Network) HottestEjection() int {
	hot := 0
	for n := 1; n < nw.n; n++ {
		if nw.ej[n].busy > nw.ej[hot].busy {
			hot = n
		}
	}
	return hot
}

// FillMetrics exports the network's end-of-run counters into the registry
// passed to Instrument: message/byte totals, the stream high-water mark, and
// — for the hottest ejection node — the utilization (busy fraction of
// elapsed virtual time) of its NIC injection/ejection ports and each of its
// six outgoing torus links. Call it after the simulation has run; it is a
// no-op when uninstrumented.
func (nw *Network) FillMetrics() {
	reg := nw.reg
	if reg == nil {
		return
	}
	st := nw.Stats()
	reg.Counter("fabric_messages_total").Add(float64(st.Messages))
	reg.Counter("fabric_bytes_total").Add(float64(st.Bytes))
	reg.Gauge("fabric_max_queue_wait_us").Set(st.MaxQueueWait.Micros())
	reg.Gauge("fabric_max_streams").Set(float64(st.MaxStreams))
	reg.Counter("fabric_link_stalls_total").Add(float64(st.LinkStalls))
	reg.Counter("fabric_reroutes_total").Add(float64(st.Reroutes))
	reg.Counter("fabric_dropped_msgs_total").Add(float64(st.Dropped))
	reg.Counter("fabric_node_drops_total").Add(float64(st.NodeDrops))
	if nw.cfg.CongestionThreshold > 0 {
		reg.Counter("fabric_ce_marks_total").Add(float64(st.CEMarks))
	}

	elapsed := nw.eng.Now()
	util := func(busy sim.Time) float64 {
		if elapsed <= 0 {
			return 0
		}
		return float64(busy) / float64(elapsed)
	}
	hot := nw.HottestEjection()
	node := obs.L("node", fmt.Sprint(hot))
	reg.Gauge("fabric_hot_node").Set(float64(hot))
	reg.Gauge("fabric_nic_util", node, obs.L("port", "ej")).Set(util(nw.ej[hot].busy))
	reg.Gauge("fabric_nic_util", node, obs.L("port", "inj")).Set(util(nw.inj[hot].busy))
	reg.Counter("fabric_nic_ej_msgs", node).Add(float64(nw.ej[hot].msgs))
	for d := 0; d < 6; d++ {
		reg.Gauge("fabric_link_util", node, obs.L("link", linkNames[d])).
			Set(util(nw.links[hot*6+d].busy))
	}
}
