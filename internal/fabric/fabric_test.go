package fabric

import (
	"testing"
	"testing/quick"

	"armcivt/internal/sim"
)

func netFor(t *testing.T, n int, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.New()
	return e, New(e, n, cfg)
}

func TestTorusShapeCovers(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 27, 64, 100, 256, 1024, 5000} {
		s := TorusShape(n)
		if s[0]*s[1]*s[2] < n {
			t.Errorf("TorusShape(%d) = %v does not cover", n, s)
		}
	}
	if s := TorusShape(27); s != [3]int{3, 3, 3} {
		t.Errorf("TorusShape(27) = %v, want {3 3 3}", s)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig(64)
	if c.LinkBandwidth <= 0 || c.NICBandwidth <= 0 || c.HopLatency <= 0 || c.SoftwareOverhead <= 0 {
		t.Errorf("DefaultConfig has zero fields: %+v", c)
	}
	if c.LinkBandwidth < c.NICBandwidth {
		t.Errorf("link bandwidth %v below NIC bandwidth %v", c.LinkBandwidth, c.NICBandwidth)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	_, nw := netFor(t, 24, Config{Shape: [3]int{2, 3, 4}})
	seen := map[[3]int]bool{}
	for v := 0; v < 24; v++ {
		c := nw.Coord(v)
		if seen[c] {
			t.Errorf("duplicate coord %v", c)
		}
		seen[c] = true
	}
}

func TestHopsSymmetricAndWraps(t *testing.T) {
	_, nw := netFor(t, 64, Config{Shape: [3]int{4, 4, 4}})
	for a := 0; a < 64; a += 5 {
		for b := 0; b < 64; b += 3 {
			if nw.Hops(a, b) != nw.Hops(b, a) {
				t.Errorf("asymmetric hops %d,%d", a, b)
			}
		}
	}
	// Coord 0 and coord 3 on a 4-ring are 1 apart via wraparound.
	a := 0 // (0,0,0)
	b := 3 // (3,0,0)
	if h := nw.Hops(a, b); h != 1 {
		t.Errorf("wraparound hops = %d, want 1", h)
	}
	if h := nw.Hops(0, 0); h != 0 {
		t.Errorf("self hops = %d", h)
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	_, nw := netFor(t, 60, Config{Shape: [3]int{4, 4, 4}})
	for a := 0; a < 60; a += 7 {
		for b := 0; b < 60; b += 5 {
			if got := len(nw.route(a, b, nil)); got != nw.Hops(a, b) {
				t.Errorf("route(%d,%d) length %d != Hops %d", a, b, got, nw.Hops(a, b))
			}
		}
	}
}

func TestSendUncontendedLatency(t *testing.T) {
	cfg := Config{
		Shape:            [3]int{4, 4, 4},
		LinkBandwidth:    10,
		NICBandwidth:     2,
		HopLatency:       100,
		SoftwareOverhead: 1000,
	}
	e, nw := netFor(t, 64, cfg)
	size := 1000
	var at sim.Time
	nw.Send(0, 1, size, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// overhead + injNIC + hop + link + hop + ejNIC
	want := sim.Time(1000) + 500 + 100 + 100 + 100 + 500
	if at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
}

func TestSendLoopback(t *testing.T) {
	e, nw := netFor(t, 8, Config{SoftwareOverhead: 700})
	var at sim.Time
	nw.Send(3, 3, 1<<20, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 700 {
		t.Errorf("loopback delivered at %v, want software overhead only", at)
	}
}

func TestSendLatencyGrowsWithDistance(t *testing.T) {
	cfg := Config{Shape: [3]int{8, 8, 4}, LinkBandwidth: 10, NICBandwidth: 2, HopLatency: 100, SoftwareOverhead: 1000}
	e, nw := netFor(t, 256, cfg)
	var near, far sim.Time
	nw.Send(0, 1, 100, func() { near = e.Now() })
	e.At(1_000_000, func() {
		base := e.Now()
		nw.Send(0, 255, 100, func() { far = e.Now() - base })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Errorf("far delivery %v not slower than near %v", far, near)
	}
	hopsDelta := nw.Hops(0, 255) - nw.Hops(0, 1)
	if want := sim.Time(hopsDelta) * (100 + 10); far-near != want {
		t.Errorf("distance penalty = %v, want %v (%d extra hops)", far-near, want, hopsDelta)
	}
}

func TestEjectionSerializationUnderFanIn(t *testing.T) {
	// Many senders to one node: deliveries must be serialized by the
	// victim's ejection bandwidth, the physical mechanism behind Figure 2's
	// flat-tree hot-spot.
	cfg := Config{Shape: [3]int{4, 4, 2}, LinkBandwidth: 1000, NICBandwidth: 1, HopLatency: 1, SoftwareOverhead: 1}
	e, nw := netFor(t, 32, cfg)
	size := 1000 // 1000ns of ejection serialization each
	var deliveries []sim.Time
	for s := 1; s < 32; s++ {
		nw.Send(s, 0, size, func() { deliveries = append(deliveries, e.Now()) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 31 {
		t.Fatalf("got %d deliveries", len(deliveries))
	}
	span := deliveries[len(deliveries)-1] - deliveries[0]
	if span < sim.Time(30*size) {
		t.Errorf("deliveries span %v, want >= %v (ejection-serialized)", span, sim.Time(30*size))
	}
	if nw.EjectionMsgs(0) != 31 {
		t.Errorf("EjectionMsgs = %d", nw.EjectionMsgs(0))
	}
	if nw.EjectionBusy(0) != sim.Time(31*size) {
		t.Errorf("EjectionBusy = %v", nw.EjectionBusy(0))
	}
	if nw.Stats().MaxQueueWait == 0 {
		t.Error("no queue wait recorded under fan-in")
	}
}

func TestFIFOOrderPreservedPerLink(t *testing.T) {
	cfg := Config{Shape: [3]int{4, 1, 1}, LinkBandwidth: 1, NICBandwidth: 1, HopLatency: 10, SoftwareOverhead: 10}
	e, nw := netFor(t, 4, cfg)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(sim.Time(i), func() {
			nw.Send(0, 1, 100, func() { order = append(order, i) })
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("deliveries out of order: %v", order)
		}
	}
}

func TestInjectionSerializationAtSender(t *testing.T) {
	// One sender spraying many nodes is limited by its injection port.
	cfg := Config{Shape: [3]int{4, 4, 2}, LinkBandwidth: 1000, NICBandwidth: 1, HopLatency: 1, SoftwareOverhead: 1}
	e, nw := netFor(t, 32, cfg)
	var last sim.Time
	for d := 1; d < 32; d++ {
		nw.Send(0, d, 1000, func() {
			if e.Now() > last {
				last = e.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last < sim.Time(31*1000) {
		t.Errorf("last delivery %v, want >= 31000 (injection-serialized)", last)
	}
}

func TestStatsCounters(t *testing.T) {
	e, nw := netFor(t, 8, Config{})
	nw.Send(0, 1, 100, func() {})
	nw.Send(1, 2, 200, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Messages != 2 || st.Bytes != 300 {
		t.Errorf("stats = %+v", st)
	}
	if nw.LinkBusy(0) == 0 {
		t.Error("no link busy time recorded at node 0")
	}
}

func TestSendPanicsOnBadArgs(t *testing.T) {
	e, nw := netFor(t, 4, Config{})
	_ = e
	for _, fn := range []func(){
		func() { nw.Send(-1, 0, 1, func() {}) },
		func() { nw.Send(0, 4, 1, func() {}) },
		func() { nw.Send(0, 1, -1, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Send did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewPanicsOnTinyShape(t *testing.T) {
	e := sim.New()
	defer func() {
		if recover() == nil {
			t.Error("undersized shape did not panic")
		}
	}()
	New(e, 100, Config{Shape: [3]int{2, 2, 2}})
}

// Property: every message is delivered exactly once and never before the
// zero-load bound.
func TestPropertyDeliveryBounds(t *testing.T) {
	f := func(seed int64) bool {
		e := sim.New()
		e.Seed(seed)
		cfg := Config{Shape: [3]int{4, 4, 4}, LinkBandwidth: 8, NICBandwidth: 2, HopLatency: 50, SoftwareOverhead: 500}
		nw := New(e, 64, cfg)
		rng := e.Rand()
		n := 20 + rng.Intn(30)
		delivered := 0
		okAll := true
		for i := 0; i < n; i++ {
			src := rng.Intn(64)
			dst := rng.Intn(64)
			size := 1 + rng.Intn(4096)
			sendAt := sim.Time(rng.Intn(10000))
			e.At(sendAt, func() {
				start := e.Now()
				hops := nw.Hops(src, dst)
				minLat := cfg.SoftwareOverhead
				if src != dst {
					minLat += sim.Time(float64(size)/cfg.NICBandwidth)*2 +
						sim.Time(hops)*(cfg.HopLatency+sim.Time(float64(size)/cfg.LinkBandwidth)) +
						cfg.HopLatency
				}
				nw.Send(src, dst, size, func() {
					delivered++
					if e.Now()-start < minLat {
						okAll = false
					}
				})
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return okAll && delivered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStreamOverloadThrottlesHotSpot(t *testing.T) {
	// With more distinct sources than StreamLimit queued at one ejection
	// port, per-message service must slow down (the BEER-throttling model).
	mk := func(senders int) sim.Time {
		e := sim.New()
		cfg := Config{
			Shape: [3]int{8, 8, 2}, LinkBandwidth: 1000, NICBandwidth: 1,
			HopLatency: 1, SoftwareOverhead: 1, StreamLimit: 4, StreamPenalty: 0.5,
		}
		nw := New(e, 128, cfg)
		var last sim.Time
		for s := 1; s <= senders; s++ {
			nw.Send(s, 0, 1000, func() {
				if e.Now() > last {
					last = e.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	t8 := mk(8)
	t16 := mk(16)
	// Without throttling, 16 senders would take exactly 2x the 8-sender
	// time; throttling must make it superlinear.
	if float64(t16) < 2.2*float64(t8) {
		t.Errorf("no superlinear degradation: 8 senders %v, 16 senders %v", t8, t16)
	}
}

func TestStreamStatTracksDistinctSources(t *testing.T) {
	e := sim.New()
	cfg := Config{Shape: [3]int{4, 4, 2}, LinkBandwidth: 1000, NICBandwidth: 1, HopLatency: 1, SoftwareOverhead: 1, StreamLimit: 64, StreamPenalty: 0.1}
	nw := New(e, 32, cfg)
	for s := 1; s <= 10; s++ {
		nw.Send(s, 0, 5000, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := nw.Stats().MaxStreams; got < 5 || got > 10 {
		t.Errorf("MaxStreams = %d, want within (5,10]", got)
	}
}

func TestSingleSourceNeverThrottled(t *testing.T) {
	// One source streaming to one destination stays at full rate no matter
	// how many messages are queued.
	e := sim.New()
	cfg := Config{Shape: [3]int{2, 2, 1}, LinkBandwidth: 1000, NICBandwidth: 1, HopLatency: 1, SoftwareOverhead: 1, StreamLimit: 1, StreamPenalty: 10}
	nw := New(e, 4, cfg)
	var last sim.Time
	n := 20
	for i := 0; i < n; i++ {
		nw.Send(1, 0, 1000, func() { last = e.Now() })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All messages from one source: ejection time = n * size/bw plus fixed
	// per-path latency, no penalty.
	if last > sim.Time(n*1000)+5000 {
		t.Errorf("single-source stream throttled: finished at %v", last)
	}
}

func TestBlueGenePConfig(t *testing.T) {
	c := BlueGenePConfig(64)
	x := DefaultConfig(64)
	if c.LinkBandwidth >= x.LinkBandwidth {
		t.Errorf("BG/P links (%v) not slower than XT5 (%v)", c.LinkBandwidth, x.LinkBandwidth)
	}
	if c.SoftwareOverhead >= x.SoftwareOverhead {
		t.Errorf("BG/P software overhead (%v) not below XT5 (%v)", c.SoftwareOverhead, x.SoftwareOverhead)
	}
	if c.StreamLimit <= x.StreamLimit {
		t.Errorf("BG/P stream limit (%d) not above XT5 (%d)", c.StreamLimit, x.StreamLimit)
	}
	if c.Shape[0]*c.Shape[1]*c.Shape[2] < 64 {
		t.Errorf("shape %v does not cover 64 nodes", c.Shape)
	}
	// It must drive a network end to end.
	e := sim.New()
	nw := New(e, 64, c)
	delivered := false
	nw.Send(0, 63, 4096, func() { delivered = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Error("message lost on BG/P fabric")
	}
}

func TestBulkTransferSlowerOnBlueGeneP(t *testing.T) {
	run := func(cfg Config) sim.Time {
		e := sim.New()
		nw := New(e, 8, cfg)
		var at sim.Time
		nw.Send(0, 5, 1<<20, func() { at = e.Now() })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	xt5 := run(DefaultConfig(8))
	bgp := run(BlueGenePConfig(8))
	if bgp < 2*xt5 {
		t.Errorf("1MB on BG/P (%v) not clearly slower than XT5 (%v)", bgp, xt5)
	}
}
