package fabric

import (
	"testing"

	"armcivt/internal/faults"
	"armcivt/internal/sim"
)

// faultyNet builds a 1-D ring of n nodes (every route is unambiguous) with
// the given fault spec installed.
func faultyNet(t *testing.T, n int, spec string, tweak func(*Config)) (*sim.Engine, *Network, *faults.Injector) {
	t.Helper()
	e := sim.New()
	inj := faults.NewInjector(e, n, faults.MustParseSpec(spec))
	cfg := Config{Shape: [3]int{n, 1, 1}, Faults: inj}
	if tweak != nil {
		tweak(&cfg)
	}
	return e, New(e, n, cfg), inj
}

func TestFaultFreeRoutesIdentical(t *testing.T) {
	e := sim.New()
	inj := faults.NewInjector(e, 60, faults.MustParseSpec("cht:3"))
	plain := New(e, 60, Config{Shape: [3]int{4, 4, 4}})
	faulted := New(e, 60, Config{Shape: [3]int{4, 4, 4}, Faults: inj})
	for a := 0; a < 60; a += 7 {
		for b := 0; b < 60; b += 5 {
			p, q := plain.route(a, b, nil), faulted.routeFaultAware(a, b, nil)
			if len(p) != len(q) {
				t.Fatalf("route(%d,%d) lengths differ: %d vs %d", a, b, len(p), len(q))
			}
			for i := range p {
				if p[i] != q[i] {
					t.Fatalf("route(%d,%d) hop %d differs: %d vs %d", a, b, i, p[i], q[i])
				}
			}
		}
	}
	if faulted.Stats().Reroutes != 0 {
		t.Errorf("Reroutes = %d with no link faults", faulted.Stats().Reroutes)
	}
}

func TestRerouteAroundFailedLink(t *testing.T) {
	// Ring of 4: 0->1 is one hop, but with link 0-1 down the route must take
	// the long arc 0->3->2->1.
	e, nw, _ := faultyNet(t, 4, "link:0-1@t=0s", nil)
	var done sim.Time
	nw.Send(0, 1, 1024, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done == 0 {
		t.Fatal("message never delivered")
	}
	st := nw.Stats()
	if st.Reroutes != 1 {
		t.Errorf("Reroutes = %d, want 1", st.Reroutes)
	}
	if st.LinkStalls != 0 || st.Dropped != 0 {
		t.Errorf("rerouted message stalled or dropped: %+v", st)
	}
}

func TestStallResumesAfterRepair(t *testing.T) {
	// Both arcs broken until t=1ms: the message parks at the failed link and
	// resumes once it repairs.
	e, nw, _ := faultyNet(t, 4, "link:0-1@t=0s@for=1ms,link:0-3@t=0s@for=1ms", nil)
	var done sim.Time
	nw.Send(0, 1, 1024, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done < sim.Millisecond {
		t.Errorf("delivered at %v, before the link repaired", done)
	}
	st := nw.Stats()
	if st.LinkStalls == 0 {
		t.Error("no link stall recorded")
	}
	if st.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", st.Dropped)
	}
}

func TestDropAfterStallLimit(t *testing.T) {
	e, nw, _ := faultyNet(t, 4, "link:0-1@t=0s,link:0-3@t=0s", func(c *Config) {
		c.LinkStallLimit = 100 * sim.Microsecond
	})
	delivered := false
	nw.Send(0, 1, 1024, func() { delivered = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("message crossed a permanently failed cut")
	}
	if nw.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", nw.Stats().Dropped)
	}
}

func TestDegradeStretchesSerialization(t *testing.T) {
	run := func(spec string) sim.Time {
		var e *sim.Engine
		var nw *Network
		if spec == "" {
			e = sim.New()
			nw = New(e, 4, Config{Shape: [3]int{4, 1, 1}})
		} else {
			e, nw, _ = faultyNet(t, 4, spec, nil)
		}
		var done sim.Time
		nw.Send(0, 1, 1<<20, func() { done = e.Now() })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	healthy := run("")
	degraded := run("degrade:0-1@t=0s@for=10ms@bw=0.25")
	if degraded <= healthy {
		t.Errorf("degraded delivery %v not slower than healthy %v", degraded, healthy)
	}
}

func TestLinkEndsInverse(t *testing.T) {
	_, nw := netFor(t, 24, Config{Shape: [3]int{2, 3, 4}})
	for idx := 0; idx < 24*6; idx++ {
		from, to := nw.linkEnds(idx)
		if from != idx/6 {
			t.Fatalf("linkEnds(%d) from = %d", idx, from)
		}
		// The reverse link (same dimension, opposite direction) from `to`
		// must land back on `from`.
		d := (idx % 6) / 2
		rev := to*6 + d*2 + 1 - idx%2
		back, home := nw.linkEnds(rev)
		if back != to || home != from {
			t.Fatalf("linkEnds(%d) = (%d,%d) but reverse %d = (%d,%d)", idx, from, to, rev, back, home)
		}
	}
}
