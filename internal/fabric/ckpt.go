package fabric

import (
	"sort"

	"armcivt/internal/ckpt"
)

// CheckpointSection digests the fabric's state at a quiescent boundary:
// link/injection/ejection port reservations, per-source ejection queue
// occupancy, per-position counters, and message free-list depths. Every
// field digested here is deterministic under the bit-identity contract, so
// two runs of the same workload paused at the same boundary produce equal
// sections regardless of shard count (docs/CHECKPOINT.md).
func (nw *Network) CheckpointSection() []byte {
	var enc ckpt.Enc

	// The port arrays and per-position counters are O(links)/O(nodes) and
	// dominate fabric digest cost at large scale, so they are digested
	// sparsely — a port no message ever crossed contributes nothing, and a
	// used port folds with its index so position stays part of the digest —
	// and in parallel via ParallelMix (chunked, deterministic, safe at a
	// quiescent boundary).
	ports := func(label string, ls []link) {
		enc.Str(label)
		enc.U32(uint32(len(ls)))
		enc.U64(ckpt.ParallelMix(len(ls), func(lo, hi int) uint64 {
			h := ckpt.MixInit
			for i := lo; i < hi; i++ {
				if ls[i].nextFree == 0 && ls[i].busy == 0 && ls[i].msgs == 0 {
					continue
				}
				h = ckpt.Mix(h, uint64(i))
				h = ckpt.Mix(h, uint64(ls[i].nextFree))
				h = ckpt.Mix(h, uint64(ls[i].busy))
				h = ckpt.Mix(h, ls[i].msgs)
			}
			return h
		}))
	}
	ports("links", nw.links)
	ports("inj", nw.inj)
	ports("ej", nw.ej)

	enc.Str("ejSources")
	h := ckpt.MixInit
	for node, srcs := range nw.ejSources {
		if len(srcs) == 0 {
			continue
		}
		keys := make([]int, 0, len(srcs))
		for src := range srcs {
			keys = append(keys, src)
		}
		sort.Ints(keys)
		h = ckpt.Mix(h, uint64(node))
		h = ckpt.Mix(h, uint64(len(keys)))
		for _, src := range keys {
			h = ckpt.Mix(h, uint64(src))
			h = ckpt.Mix(h, uint64(srcs[src]))
		}
	}
	enc.U64(h)

	enc.Str("stats")
	enc.U64(ckpt.ParallelMix(len(nw.stats), func(lo, hi int) uint64 {
		h := ckpt.MixInit
		for i := lo; i < hi; i++ {
			s := &nw.stats[i]
			if s.Messages|s.Bytes|uint64(s.MaxQueueWait)|uint64(s.MaxStreams)|
				s.LinkStalls|s.Reroutes|s.Dropped|s.NodeDrops|s.CEMarks == 0 {
				continue
			}
			h = ckpt.Mix(h, uint64(i))
			h = ckpt.Mix(h, s.Messages)
			h = ckpt.Mix(h, s.Bytes)
			h = ckpt.Mix(h, uint64(s.MaxQueueWait))
			h = ckpt.Mix(h, uint64(s.MaxStreams))
			h = ckpt.Mix(h, s.LinkStalls)
			h = ckpt.Mix(h, s.Reroutes)
			h = ckpt.Mix(h, s.Dropped)
			h = ckpt.Mix(h, s.NodeDrops)
			h = ckpt.Mix(h, s.CEMarks)
		}
		return h
	}))

	enc.Str("msgFree")
	h = ckpt.MixInit
	for pos := range nw.msgFree {
		if n := len(nw.msgFree[pos]); n != 0 {
			h = ckpt.Mix(h, uint64(pos))
			h = ckpt.Mix(h, uint64(n))
		}
	}
	enc.U64(h)

	return enc.Bytes()
}
