package armcivt_test

import (
	"bytes"
	"fmt"
	"testing"

	"armcivt"
	"armcivt/internal/core"
)

func TestClusterQuickPath(t *testing.T) {
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 9, PPN: 2, Topology: armcivt.MFCG})
	if err != nil {
		t.Fatal(err)
	}
	c.Alloc("data", 4096)
	if err := c.Run(func(r *armcivt.Rank) {
		dst := (r.Rank() + 7) % r.N()
		payload := []byte{byte(r.Rank()), 0xAB}
		r.Put(dst, "data", 2*r.Rank(), payload)
		r.Barrier()
		got := r.Get(dst, "data", 2*r.Rank(), 2)
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d: got %v", r.Rank(), got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= 0 {
		t.Error("virtual clock did not advance")
	}
	if c.Stats().Ops == 0 {
		t.Error("no ops recorded")
	}
}

func TestClusterTopologySelection(t *testing.T) {
	for _, kind := range []armcivt.Kind{armcivt.FCG, armcivt.MFCG, armcivt.CFCG} {
		c, err := armcivt.NewCluster(armcivt.Options{Nodes: 27, PPN: 1, Topology: kind})
		if err != nil {
			t.Fatal(err)
		}
		if c.Topology().Kind() != kind {
			t.Errorf("topology = %v, want %v", c.Topology().Kind(), kind)
		}
	}
	if _, err := armcivt.NewCluster(armcivt.Options{Nodes: 27, PPN: 1, Topology: armcivt.Hypercube}); err == nil {
		t.Error("hypercube on 27 nodes accepted")
	}
}

func TestClusterCustomTopology(t *testing.T) {
	mesh, err := core.NewMesh(2, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 16, PPN: 1, CustomTopology: mesh})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Topology().Shape()[0]; got != 2 {
		t.Errorf("custom mesh shape[0] = %d, want 2", got)
	}
}

func TestClusterGlobalArrayAndCounter(t *testing.T) {
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 4, PPN: 2, Topology: armcivt.MFCG})
	if err != nil {
		t.Fatal(err)
	}
	arr := c.NewGlobalArray("A", 16, 16)
	ctr := c.NewCounter("tasks", 0)
	claimed := map[int64]bool{}
	if err := c.Run(func(r *armcivt.Rank) {
		for {
			tk := ctr.Next(r)
			if tk >= 16 {
				break
			}
			claimed[tk] = true
			m := armcivt.NewMatrix(1, 16)
			for j := 0; j < 16; j++ {
				m.Set(0, j, float64(tk))
			}
			arr.Put(r, [2]int{int(tk), 0}, [2]int{int(tk) + 1, 16}, m)
		}
		r.Barrier()
		if r.Rank() == 0 {
			got := arr.Get(r, [2]int{0, 0}, [2]int{16, 16})
			for i := 0; i < 16; i++ {
				if got.At(i, 3) != float64(i) {
					t.Errorf("row %d = %v", i, got.At(i, 3))
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(claimed) != 16 {
		t.Errorf("claimed %d tasks, want 16", len(claimed))
	}
}

func TestClusterMasterRSSDropsWithMFCG(t *testing.T) {
	mk := func(kind armcivt.Kind) int64 {
		c, err := armcivt.NewCluster(armcivt.Options{Nodes: 64, PPN: 12, Topology: kind})
		if err != nil {
			t.Fatal(err)
		}
		return c.MasterRSS(0)
	}
	if fcg, mfcg := mk(armcivt.FCG), mk(armcivt.MFCG); mfcg >= fcg {
		t.Errorf("MFCG RSS %d not below FCG %d", mfcg, fcg)
	}
}

func TestClusterOptionOverrides(t *testing.T) {
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 4, PPN: 1, BufSize: 8192, BufsPerProc: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Runtime().Config().BufSize; got != 8192 {
		t.Errorf("BufSize = %d", got)
	}
	if got := c.Runtime().Config().BufsPerProc; got != 2 {
		t.Errorf("BufsPerProc = %d", got)
	}
	if c.Fabric().LinkBandwidth <= 0 {
		t.Error("fabric config empty")
	}
}

func ExampleCluster() {
	cluster, err := armcivt.NewCluster(armcivt.Options{Nodes: 9, PPN: 1, Topology: armcivt.MFCG})
	if err != nil {
		panic(err)
	}
	cluster.Alloc("counter", 8)
	total := int64(0)
	if err := cluster.Run(func(r *armcivt.Rank) {
		old := r.FetchAdd(0, "counter", 0, 1)
		if old == int64(r.N()-1) { // last incrementer
			total = old + 1
		}
	}); err != nil {
		panic(err)
	}
	fmt.Println(total)
	// Output: 9
}

func TestClusterGroups(t *testing.T) {
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 4, PPN: 2, Topology: armcivt.MFCG})
	if err != nil {
		t.Fatal(err)
	}
	g := c.NewGroup("left", []int{0, 1, 2, 3})
	if err := c.Run(func(r *armcivt.Rank) {
		if !g.Contains(r.Rank()) {
			return
		}
		sum := r.GroupAllreduceSum(g, []float64{float64(r.Rank())})
		if sum[0] != 6 {
			t.Errorf("rank %d: group sum = %v, want 6", r.Rank(), sum[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendFacade(t *testing.T) {
	a := armcivt.Recommend(armcivt.RecommendOptions{Nodes: 1024, PPN: 12, Workload: armcivt.Dynamic})
	if a.Kind != armcivt.MFCG {
		t.Errorf("dynamic advice = %v, want MFCG", a.Kind)
	}
	if a.Reason == "" || a.BufferBytesPerNode <= 0 {
		t.Errorf("advice incomplete: %+v", a)
	}
	if armcivt.Recommend(armcivt.RecommendOptions{Nodes: 64, PPN: 4, Workload: armcivt.Neighborly}).Kind != armcivt.FCG {
		t.Error("neighborly advice not FCG")
	}
	if armcivt.Recommend(armcivt.RecommendOptions{Nodes: 64, PPN: 4, MemBudget: 1 << 20, Workload: armcivt.Bulk}).Kind == armcivt.FCG {
		t.Error("tight budget still recommends FCG")
	}
	// Explicit buffer parameters shrink FCG's footprint below the budget.
	tiny := armcivt.RecommendOptions{Nodes: 64, PPN: 4, MemBudget: 1 << 20, Workload: armcivt.Bulk, BufsPerProc: 1, BufSize: 512}
	if armcivt.Recommend(tiny).Kind != armcivt.FCG {
		t.Error("small buffers should let FCG fit the budget")
	}
}

func TestRunStatsAndAggregationOption(t *testing.T) {
	c, err := armcivt.NewCluster(armcivt.Options{
		Nodes: 9, PPN: 2, Topology: armcivt.MFCG,
		Aggregation: armcivt.AggregationConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Alloc("data", 4096)
	st, err := c.RunStats(func(r *armcivt.Rank) {
		hs := make([]*armcivt.Handle, 0, 8)
		for k := 0; k < 8; k++ {
			hs = append(hs, r.NbPut(0, "data", 8*r.Rank(), []byte{byte(k)}))
		}
		r.WaitAll(hs...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops == 0 {
		t.Error("RunStats returned empty stats")
	}
	if st.AggBatches == 0 {
		t.Error("aggregation enabled via Options but no batches formed")
	}
}

func TestSeedSetZeroSeed(t *testing.T) {
	// An explicit zero seed (SeedSet) must be accepted and deterministic.
	run := func(opt armcivt.Options) armcivt.Time {
		c, err := armcivt.NewCluster(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Alloc("x", 64)
		if err := c.Run(func(r *armcivt.Rank) { r.FetchAdd(0, "x", 0, 1) }); err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	base := armcivt.Options{Nodes: 4, PPN: 2, Topology: armcivt.MFCG}
	withZero := base
	withZero.SeedSet = true
	if run(base) != run(withZero) || run(withZero) != run(withZero) {
		t.Error("explicit zero seed not deterministic")
	}
}

func TestClusterCollectives(t *testing.T) {
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 8, PPN: 1, Topology: armcivt.CFCG})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(r *armcivt.Rank) {
		got := r.Bcast(3, seedIf(r.Rank() == 3, []byte("hi")))
		if string(got) != "hi" {
			t.Errorf("rank %d bcast = %q", r.Rank(), got)
		}
		sum := r.AllreduceSum([]float64{2})
		if sum[0] != 16 {
			t.Errorf("rank %d allreduce = %v", r.Rank(), sum[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func seedIf(cond bool, b []byte) []byte {
	if cond {
		return b
	}
	return nil
}

func TestClusterClose(t *testing.T) {
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 8, PPN: 2, Topology: armcivt.MFCG})
	if err != nil {
		t.Fatal(err)
	}
	c.Alloc("m", 64)
	if err := c.Run(func(r *armcivt.Rank) {
		r.FetchAdd(0, "m", 0, 1)
	}); err != nil {
		t.Fatal(err)
	}
	c.Close() // releases the 8 CHT daemon goroutines
	c.Close() // idempotent
}
