package armcivt_test

// BENCH_ckpt.json is the committed checkpoint-overhead record
// (docs/CHECKPOINT.md): the 16k-node scaling point of figures.Scale run
// unarmed and with periodic checkpointing armed at the default capture
// interval (armci.DefaultCkptEvery, 1ms of virtual time), snapshots
// persisted to disk. Two claims are on record:
//
//   - overhead: the armed run's wall clock exceeds the unarmed run's by
//     less than overhead_budget_pct (10%) on the recording host — captures
//     digest every layer at each boundary, and the digest cost must stay
//     in the noise at the default interval.
//   - passivity: the armed run's completion fingerprint equals the unarmed
//     run's bit-for-bit. Captures are passive by contract, and the record
//     refuses to regenerate if that ever breaks.
//
// TestCkptBenchRecord validates the committed record cheaply on every test
// run, plus a live passivity check at 1k nodes with a deliberately hot
// interval; the 16k regeneration runs only with -update-bench-ckpt.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"armcivt/internal/armci"
	"armcivt/internal/ckpt"
	"armcivt/internal/figures"
	"armcivt/internal/sim"
)

var updateBenchCkpt = flag.Bool("update-bench-ckpt", false, "re-run the 16k-node armed-vs-unarmed comparison and rewrite BENCH_ckpt.json (slow: ~10s)")

const benchCkptPath = "BENCH_ckpt.json"

// benchCkptSchema versions the BENCH_ckpt.json layout.
const benchCkptSchema = "armcivt-bench-ckpt/v1"

// benchCkptNodes is the measured scale point — the same 16k cell the CI
// footprint smoke pins — and benchCkptBudgetPct the acceptance ceiling on
// capture overhead at the default interval.
const (
	benchCkptNodes     = 16384
	benchCkptBudgetPct = 10.0
)

// benchCkptReps: wall clocks are min-of-N to push scheduler noise out of a
// single-digit-percent comparison.
const benchCkptReps = 3

type benchCkptRecord struct {
	Schema string `json:"schema"`
	// HostCPUs is runtime.NumCPU() on the recording host — the context a
	// wall-clock comparison is meaningless without.
	HostCPUs int `json:"host_cpus"`
	// Nodes is the measured scale point; EveryUS the capture interval in
	// virtual microseconds (the armci default).
	Nodes   int     `json:"nodes"`
	EveryUS float64 `json:"every_us"`
	// OverheadBudgetPct is the acceptance ceiling OverheadPct must clear.
	OverheadBudgetPct float64 `json:"overhead_budget_pct"`
	// UnarmedWallMS / ArmedWallMS are min-of-reps wall clocks; OverheadPct
	// their relative difference.
	UnarmedWallMS float64 `json:"unarmed_wall_ms"`
	ArmedWallMS   float64 `json:"armed_wall_ms"`
	OverheadPct   float64 `json:"overhead_pct"`
	Reps          int     `json:"reps"`
	// Captures and SnapshotBytes describe what the armed run actually did:
	// quiescent boundaries captured and the last snapshot's encoded size.
	Captures      int `json:"captures"`
	SnapshotBytes int `json:"snapshot_bytes"`
	// Fingerprint is the shared completion fingerprint (hex); regeneration
	// refuses to record armed != unarmed.
	Fingerprint string `json:"fingerprint"`
}

func TestCkptBenchRecord(t *testing.T) {
	if *updateBenchCkpt {
		regenerateBenchCkpt(t)
	}
	raw, err := os.ReadFile(benchCkptPath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-bench-ckpt): %v", benchCkptPath, err)
	}
	var rec benchCkptRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("parsing %s: %v", benchCkptPath, err)
	}
	if rec.Schema != benchCkptSchema {
		t.Fatalf("schema = %q, want %q", rec.Schema, benchCkptSchema)
	}
	if rec.HostCPUs < 1 {
		t.Errorf("host_cpus = %d; the record must pin the recording host's core count", rec.HostCPUs)
	}
	if rec.Nodes != benchCkptNodes {
		t.Errorf("nodes = %d, want the pinned %d", rec.Nodes, benchCkptNodes)
	}
	if want := float64(armci.DefaultCkptEvery) / 1e3; rec.EveryUS != want {
		t.Errorf("every_us = %.1f, want the armci default %.1f", rec.EveryUS, want)
	}
	if rec.OverheadBudgetPct != benchCkptBudgetPct {
		t.Errorf("overhead_budget_pct = %.1f, want the pinned %.1f", rec.OverheadBudgetPct, benchCkptBudgetPct)
	}
	if rec.UnarmedWallMS <= 0 || rec.ArmedWallMS <= 0 {
		t.Errorf("degenerate wall clocks: unarmed %.1fms, armed %.1fms", rec.UnarmedWallMS, rec.ArmedWallMS)
	}
	if rec.OverheadPct > rec.OverheadBudgetPct {
		t.Errorf("recorded capture overhead %.2f%% exceeds the %.1f%% budget (docs/CHECKPOINT.md)",
			rec.OverheadPct, rec.OverheadBudgetPct)
	}
	if rec.Captures < 1 {
		t.Errorf("captures = %d; the armed run never reached a boundary, the comparison is vacuous", rec.Captures)
	}
	if rec.SnapshotBytes < 1 {
		t.Errorf("snapshot_bytes = %d; no snapshot was encoded", rec.SnapshotBytes)
	}
	if rec.Fingerprint == "" {
		t.Error("empty fingerprint; passivity is unproven")
	}
}

// TestCkptPassivityLive re-proves the record's passivity claim on every test
// run at an affordable scale: a 1k-node point armed at a deliberately hot
// interval must capture many boundaries and still produce the unarmed run's
// fingerprint bit-for-bit.
func TestCkptPassivityLive(t *testing.T) {
	plain, err := figures.Scale(figures.ScaleConfig{Nodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	armed, err := figures.Scale(figures.ScaleConfig{
		Nodes: 1024,
		Ckpt:  &armci.CkptConfig{Dir: t.TempDir(), Every: 5 * sim.Microsecond, RunKey: "bench-live"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if armed.Ckpt.Captures < 10 {
		t.Errorf("armed run captured only %d boundaries at a 5us interval; the check lost its teeth", armed.Ckpt.Captures)
	}
	if armed.Fingerprint != plain.Fingerprint {
		t.Errorf("armed fingerprint %016x != unarmed %016x — captures perturbed the run",
			armed.Fingerprint, plain.Fingerprint)
	}
}

func regenerateBenchCkpt(t *testing.T) {
	dir := t.TempDir()
	minWall := func(ck func() *armci.CkptConfig) (time.Duration, *figures.ScaleResult) {
		best := time.Duration(0)
		var res *figures.ScaleResult
		for i := 0; i < benchCkptReps; i++ {
			t0 := time.Now()
			r, err := figures.Scale(figures.ScaleConfig{Nodes: benchCkptNodes, Ckpt: ck()})
			if err != nil {
				t.Fatal(err)
			}
			if wall := time.Since(t0); res == nil || wall < best {
				best, res = wall, r
			}
		}
		return best, res
	}

	plainWall, plain := minWall(func() *armci.CkptConfig { return nil })
	armedWall, armed := minWall(func() *armci.CkptConfig {
		return &armci.CkptConfig{Dir: dir, RunKey: "bench-ckpt"}
	})
	if armed.Fingerprint != plain.Fingerprint {
		t.Fatalf("armed fingerprint %016x != unarmed %016x — refusing to record a non-passive capture path",
			armed.Fingerprint, plain.Fingerprint)
	}
	if armed.Ckpt.Captures < 1 {
		t.Fatalf("armed run captured no boundaries at the default interval; nothing to record")
	}

	rec := benchCkptRecord{
		Schema:            benchCkptSchema,
		HostCPUs:          runtime.NumCPU(),
		Nodes:             benchCkptNodes,
		EveryUS:           float64(armci.DefaultCkptEvery) / 1e3,
		OverheadBudgetPct: benchCkptBudgetPct,
		UnarmedWallMS:     float64(plainWall.Nanoseconds()) / 1e6,
		ArmedWallMS:       float64(armedWall.Nanoseconds()) / 1e6,
		Reps:              benchCkptReps,
		Captures:          armed.Ckpt.Captures,
		SnapshotBytes:     armed.Ckpt.BytesLast,
		Fingerprint:       fmt.Sprintf("%016x", plain.Fingerprint),
	}
	rec.OverheadPct = (rec.ArmedWallMS - rec.UnarmedWallMS) / rec.UnarmedWallMS * 100
	if rec.OverheadPct > benchCkptBudgetPct {
		t.Fatalf("capture overhead %.2f%% exceeds the %.1f%% budget — refusing to record a breach",
			rec.OverheadPct, benchCkptBudgetPct)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.WriteFileAtomic(benchCkptPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: unarmed %.0fms, armed %.0fms (+%.2f%%), %d captures, %d-byte snapshots",
		benchCkptPath, rec.UnarmedWallMS, rec.ArmedWallMS, rec.OverheadPct, rec.Captures, rec.SnapshotBytes)
}
