// Loadbalance: dynamic load balancing in the Global Arrays style, the
// communication skeleton of NWChem. Workers draw task indices from a shared
// fetch-&-add counter (nxtval), fetch an input block from a distributed
// global array, compute, and accumulate the result back — all one-sided.
//
//	go run ./examples/loadbalance [-topo mfcg]
package main

import (
	"flag"
	"fmt"
	"log"

	"armcivt"
)

func main() {
	topoName := flag.String("topo", "mfcg", "virtual topology (fcg, mfcg, cfcg, hypercube)")
	nodes := flag.Int("nodes", 16, "number of nodes")
	ppn := flag.Int("ppn", 2, "processes per node")
	tasks := flag.Int("tasks", 64, "number of tasks")
	flag.Parse()

	kind, err := armcivt.ParseKind(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := armcivt.NewCluster(armcivt.Options{Nodes: *nodes, PPN: *ppn, Topology: kind})
	if err != nil {
		log.Fatal(err)
	}

	const dim = 64
	input := cluster.NewGlobalArray("input", dim, dim)
	output := cluster.NewGlobalArray("output", dim, dim)
	counter := cluster.NewCounter("nxtval", 0)

	rows := dim / *tasks
	if rows == 0 {
		rows = 1
	}
	perRank := make([]int, cluster.NRanks())

	err = cluster.Run(func(r *armcivt.Rank) {
		// Rank 0 seeds the input array.
		if r.Rank() == 0 {
			m := armcivt.NewMatrix(dim, dim)
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					m.Set(i, j, float64(i+j))
				}
			}
			input.Put(r, [2]int{0, 0}, [2]int{dim, dim}, m)
		}
		r.Barrier()

		// Work loop: claim, fetch, compute, accumulate.
		for {
			t := counter.Next(r)
			if t >= int64(*tasks) {
				break
			}
			lo := [2]int{int(t) * rows % dim, 0}
			hi := [2]int{lo[0] + rows, dim}
			block := input.Get(r, lo, hi)
			r.Sleep(50 * armcivt.Microsecond) // "compute"
			for i := range block.Data {
				block.Data[i] *= 2
			}
			output.Acc(r, lo, hi, block, 1.0)
			perRank[r.Rank()]++
		}
		r.Barrier()

		// Verify one row.
		if r.Rank() == 0 {
			got := output.Get(r, [2]int{1, 0}, [2]int{2, 4})
			fmt.Printf("output row 1: %.0f %.0f %.0f %.0f (input doubled x claims)\n",
				got.At(0, 0), got.At(0, 1), got.At(0, 2), got.At(0, 3))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	busiest, total := 0, 0
	for _, n := range perRank {
		total += n
		if n > busiest {
			busiest = n
		}
	}
	fmt.Printf("%d tasks over %d ranks on %v: busiest rank took %d, virtual time %v\n",
		total, cluster.NRanks(), cluster.Topology(), busiest, cluster.Now())
}
