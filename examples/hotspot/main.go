// Hotspot: the paper's core phenomenon in ~100 lines. Every process hammers
// rank 0 with atomic fetch-&-add operations; the example reports how long a
// probe process's operations take under FCG versus the virtual topologies,
// and how much memory each topology's request buffers cost.
//
//	go run ./examples/hotspot [-nodes 64] [-ppn 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"armcivt"
)

func main() {
	nodes := flag.Int("nodes", 64, "number of nodes")
	ppn := flag.Int("ppn", 4, "processes per node")
	opsPer := flag.Int("ops", 50, "fetch-&-add operations per process")
	flag.Parse()

	fmt.Printf("%d nodes x %d processes, every process does %d fetch-&-adds to rank 0\n\n",
		*nodes, *ppn, *opsPer)
	fmt.Printf("%-10s  %12s  %14s  %12s  %10s\n",
		"topology", "probe us/op", "total time", "buffers MB", "forwards")

	for _, kind := range []armcivt.Kind{armcivt.FCG, armcivt.MFCG, armcivt.CFCG, armcivt.Hypercube} {
		cluster, err := armcivt.NewCluster(armcivt.Options{Nodes: *nodes, PPN: *ppn, Topology: kind})
		if err != nil {
			fmt.Printf("%-10s  skipped (%v)\n", kind, err)
			continue
		}
		cluster.Alloc("counter", 8)

		var probeUS float64
		err = cluster.Run(func(r *armcivt.Rank) {
			if r.Node() == 0 {
				return // the victim node stays quiet
			}
			start := r.Now()
			for i := 0; i < *opsPer; i++ {
				r.FetchAdd(0, "counter", 0, 1)
			}
			if r.Rank() == r.N()-1 { // probe: the farthest rank
				probeUS = (r.Now() - start).Micros() / float64(*opsPer)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		st := cluster.Stats()
		bufMB := float64(cluster.Runtime().BufferBytes(0)) / (1 << 20)
		fmt.Printf("%-10s  %12.1f  %14v  %12.1f  %10d\n",
			kind, probeUS, cluster.Now(), bufMB, st.Forwards)
	}

	fmt.Println("\nFCG delivers the lowest uncontended latency but needs O(N) buffer memory and")
	fmt.Println("collapses under hot-spot load; MFCG trades one forwarding hop for O(sqrt N)")
	fmt.Println("memory and graceful degradation — the paper's headline result.")
}
