// Stencil: a neighbour-exchange wavefront in the NAS-LU style, showing
// ARMCI's notify-wait synchronization. Each process owns a block of a 2-D
// domain; sweeps propagate corner-to-corner with one-sided boundary puts
// followed by notifications, with no receives anywhere.
//
//	go run ./examples/stencil [-topo cfcg] [-sweeps 6]
package main

import (
	"flag"
	"fmt"
	"log"

	"armcivt"
)

func main() {
	topoName := flag.String("topo", "cfcg", "virtual topology")
	sweeps := flag.Int("sweeps", 6, "wavefront sweeps")
	flag.Parse()

	kind, err := armcivt.ParseKind(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	const nodes, ppn = 27, 3 // 81 ranks -> 9x9 process grid
	cluster, err := armcivt.NewCluster(armcivt.Options{Nodes: nodes, PPN: ppn, Topology: kind})
	if err != nil {
		log.Fatal(err)
	}
	const pr, pc = 9, 9
	const edge = 128 // doubles per boundary pencil
	cluster.Alloc("halo", edge*8)

	err = cluster.Run(func(r *armcivt.Rank) {
		pi, pj := r.Rank()/pc, r.Rank()%pc
		boundary := make([]byte, edge*8)
		for s := 1; s <= *sweeps; s++ {
			// Wait for upstream neighbours (wavefront from the origin).
			if pi > 0 {
				r.WaitNotify((pi-1)*pc+pj, int64(s))
			}
			if pj > 0 {
				r.WaitNotify(pi*pc+pj-1, int64(s))
			}
			r.Sleep(100 * armcivt.Microsecond) // block relaxation
			// Push boundaries downstream: put data, then notify.
			if pi+1 < pr {
				r.Put((pi+1)*pc+pj, "halo", 0, boundary)
				r.Notify((pi+1)*pc + pj)
			}
			if pj+1 < pc {
				r.Put(pi*pc+pj+1, "halo", 0, boundary)
				r.Notify(pi*pc + pj + 1)
			}
		}
		r.Barrier()
		if r.Rank() == r.N()-1 {
			fmt.Printf("corner rank finished sweep %d at t=%v\n", *sweeps, r.Now())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	st := cluster.Stats()
	fmt.Printf("topology %v: %d one-sided ops, %d forwarded requests, done at %v\n",
		cluster.Topology(), st.Ops, st.Forwards, cluster.Now())
}
