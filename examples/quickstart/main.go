// Quickstart: bring up a simulated cluster, run the same SPMD body on every
// process, and exercise the core one-sided operations (put, get, accumulate,
// fetch-&-add) across an MFCG virtual topology.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"armcivt"
)

func main() {
	// 16 nodes x 4 processes on a meshed-FCG virtual topology.
	cluster, err := armcivt.NewCluster(armcivt.Options{
		Nodes:    16,
		PPN:      4,
		Topology: armcivt.MFCG,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("virtual topology:", cluster.Topology())

	// Every rank owns 1 KB of globally addressable memory under each name.
	cluster.Alloc("ring", 1024)
	cluster.Alloc("sum", 8)
	cluster.Alloc("tickets", 8)

	err = cluster.Run(func(r *armcivt.Rank) {
		// 1. One-sided put into the next rank's memory, no receiver code.
		msg := []byte(fmt.Sprintf("hello from rank %02d", r.Rank()))
		r.Put((r.Rank()+1)%r.N(), "ring", 0, msg)
		r.Barrier()

		// 2. One-sided get from the previous rank's memory.
		got := r.Get(r.Rank(), "ring", 0, len(msg)) // what our neighbour wrote here
		if r.Rank() == 0 {
			fmt.Printf("rank 0 received: %q\n", got)
		}

		// 3. Atomic accumulate: everyone adds rank+1 into rank 0's cell.
		r.Acc(0, "sum", 0, 1.0, []float64{float64(r.Rank() + 1)})

		// 4. Atomic fetch-&-add: everyone draws a unique ticket.
		ticket := r.FetchAdd(0, "tickets", 0, 1)
		if ticket == int64(r.N())-1 {
			fmt.Printf("last ticket %d drawn by rank %d at t=%v\n", ticket, r.Rank(), r.Now())
		}
		r.Barrier()

		if r.Rank() == 0 {
			raw := r.Get(0, "sum", 0, 8)
			total := math.Float64frombits(binary.LittleEndian.Uint64(raw))
			fmt.Printf("accumulated sum = %.0f (expected %d)\n", total, r.N()*(r.N()+1)/2)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	st := cluster.Stats()
	fmt.Printf("done at virtual t=%v: %d ops, %d requests, %d forwards\n",
		cluster.Now(), st.Ops, st.Requests, st.Forwards)
}
