package armcivt_test

// BENCH_overload.json is the committed collapse-comparison record of the
// overload-protection layer (docs/OVERLOAD.md): the incast-storm harness
// measured across storm intensities with protection off and on. Unlike the
// wall-clock records (BENCH_shards.json, BENCH_sweep.json), every number
// here is *virtual* time — goodput in completed ops per virtual
// millisecond, latency in virtual microseconds — so the record is exactly
// reproducible on any host. Two claims are on record:
//
//   - collapse: the unprotected arm's goodput drops to less than half the
//     protected arm's at the base storm intensity (the >= 2x protection
//     win the layer exists for), stays at least 1.5x behind at every
//     intensity, and its p99 window latency is worse everywhere. The win
//     is largest at the base intensity because the unprotected collapse is
//     load-driven — the incast alone jams the hot port; extra storms only
//     stretch an already-standing backlog.
//
//   - accounting: in both arms every issued op is accounted as completed
//     or shed, and the unprotected arm never sheds (it has no admission
//     control; its losses are pure queueing).
//
// TestOverloadBenchRecord validates the committed record cheaply on every
// test run; regeneration (a dozen 64-node incast simulations) runs with
// -update-bench-overload. CI re-proves the invariants live on every push
// via the overload-ci sweep smoke.

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"armcivt/internal/ckpt"
	"armcivt/internal/core"
	"armcivt/internal/figures"
)

var updateBenchOverload = flag.Bool("update-bench-overload", false, "re-run the overload storm grid and rewrite BENCH_overload.json")

const benchOverloadPath = "BENCH_overload.json"

// benchOverloadSchema versions the BENCH_overload.json layout.
const benchOverloadSchema = "armcivt-bench-overload/v1"

// benchOverloadStorms is the measured storm-intensity axis; each intensity
// runs protection off and on against the same schedule.
var benchOverloadStorms = []int{2, 4, 6}

type benchOverloadRecord struct {
	Schema string `json:"schema"`
	// Workload pins the incast cell every row shares: every rank off the
	// hot node pipelines accumulates at it while storm bursts squeeze the
	// hot node's ejection bandwidth (figures.OverloadConfig defaults).
	Workload struct {
		Topo       string `json:"topo"`
		Nodes      int    `json:"nodes"`
		PPN        int    `json:"ppn"`
		OpsPerRank int    `json:"ops_per_rank"`
		Tenants    int    `json:"tenants"`
	} `json:"workload"`
	Rows []benchOverloadRow `json:"rows"`
}

type benchOverloadRow struct {
	StormsN int     `json:"storms"`
	Protect bool    `json:"protect"`
	Goodput float64 `json:"goodput_ops_per_ms"`
	// WindowP99US is the 99th-percentile virtual latency of one pipelined
	// window (issue to WaitAll), microseconds.
	WindowP99US float64 `json:"window_p99_us"`
	Issued      int     `json:"issued"`
	Completed   int     `json:"completed"`
	Shed        int     `json:"shed"`
}

func benchOverloadConfig(storms int, protect bool) figures.OverloadConfig {
	return figures.OverloadConfig{Kind: core.MFCG, Storms: storms, Protect: protect}
}

func TestOverloadBenchRecord(t *testing.T) {
	if *updateBenchOverload {
		regenerateBenchOverload(t)
	}
	raw, err := os.ReadFile(benchOverloadPath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-bench-overload): %v", benchOverloadPath, err)
	}
	var rec benchOverloadRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("parsing %s: %v", benchOverloadPath, err)
	}
	if rec.Schema != benchOverloadSchema {
		t.Fatalf("schema = %q, want %q", rec.Schema, benchOverloadSchema)
	}
	if rec.Workload.Tenants < 2 {
		t.Error("record must come from a multi-tenant incast (the fairness claim needs >= 2 tenants)")
	}

	type arm struct{ off, on *benchOverloadRow }
	arms := map[int]*arm{}
	minStorms := 0
	for i := range rec.Rows {
		r := &rec.Rows[i]
		if r.Goodput <= 0 || r.Issued <= 0 {
			t.Errorf("storms=%d protect=%v: degenerate row (goodput %.2f, issued %d)", r.StormsN, r.Protect, r.Goodput, r.Issued)
		}
		if r.Issued != r.Completed+r.Shed {
			t.Errorf("storms=%d protect=%v: accounting broken: %d issued != %d completed + %d shed",
				r.StormsN, r.Protect, r.Issued, r.Completed, r.Shed)
		}
		if !r.Protect && r.Shed != 0 {
			t.Errorf("storms=%d: unprotected arm shed %d ops; it has no admission control", r.StormsN, r.Shed)
		}
		a := arms[r.StormsN]
		if a == nil {
			a = &arm{}
			arms[r.StormsN] = a
		}
		if r.Protect {
			a.on = r
		} else {
			a.off = r
		}
		if minStorms == 0 || r.StormsN < minStorms {
			minStorms = r.StormsN
		}
	}
	for storms, a := range arms {
		if a.off == nil || a.on == nil {
			t.Fatalf("storms=%d is missing one arm; the record must pair protection off and on", storms)
		}
		if a.on.WindowP99US >= a.off.WindowP99US {
			t.Errorf("storms=%d: protected p99 window latency %.1fus is not below unprotected %.1fus",
				storms, a.on.WindowP99US, a.off.WindowP99US)
		}
		if ratio := a.on.Goodput / a.off.Goodput; ratio < 1.5 {
			t.Errorf("storms=%d: protected/unprotected goodput ratio %.2fx < 1.5x (%.2f vs %.2f ops/ms)",
				storms, ratio, a.on.Goodput, a.off.Goodput)
		}
	}
	// The headline claim: at the base storm intensity — where both arms
	// absorb the whole schedule — protection must win goodput by at least
	// 2x, the collapse the layer exists to prevent.
	base := arms[minStorms]
	if ratio := base.on.Goodput / base.off.Goodput; ratio < 2.0 {
		t.Errorf("storms=%d: protected/unprotected goodput ratio %.2fx < 2x (%.2f vs %.2f ops/ms)",
			minStorms, ratio, base.on.Goodput, base.off.Goodput)
	}
}

func regenerateBenchOverload(t *testing.T) {
	var rec benchOverloadRecord
	rec.Schema = benchOverloadSchema
	// Pin the workload fields from the harness's applied defaults.
	sample := benchOverloadConfig(benchOverloadStorms[0], false)
	rec.Workload.Topo = sample.Kind.String()
	rec.Workload.Nodes = 64
	rec.Workload.PPN = 2
	rec.Workload.OpsPerRank = 64
	rec.Workload.Tenants = 2

	for _, storms := range benchOverloadStorms {
		for _, protect := range []bool{false, true} {
			res, err := figures.Overload(benchOverloadConfig(storms, protect))
			if err != nil {
				t.Fatal(err)
			}
			rec.Rows = append(rec.Rows, benchOverloadRow{
				StormsN: storms, Protect: protect,
				Goodput:     res.Goodput(),
				WindowP99US: res.WindowP99,
				Issued:      res.Issued, Completed: res.Completed, Shed: res.Shed,
			})
			t.Logf("storms=%d protect=%v goodput=%.2f ops/ms p99=%.1fus issued=%d completed=%d shed=%d",
				storms, protect, res.Goodput(), res.WindowP99, res.Issued, res.Completed, res.Shed)
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.WriteFileAtomic(benchOverloadPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", benchOverloadPath)
}
