package armcivt_test

// BENCH_shards.json is the committed scaling record of the sharded
// conservative-parallel kernel (docs/PARALLELISM.md): the heal-armed chaos
// harness — the repository's biggest single simulation — measured at
// several node counts and shard counts. Two claims are on record:
//
//   - wall-clock: speedup grows with simulation size, while small runs
//     sit near break-even (sharding pays one coordination round per
//     lookahead window; small runs have thin windows). The record also
//     pins host_cpus, the cores the recording host exposed: on a
//     single-core host (this container) all speedup is cache locality —
//     each lane's window burst touches 1/K of the per-node state — and
//     the multi-core parallel win stacks on top of that floor. The 2x
//     acceptance bar therefore binds only when the recording host had
//     >= 8 CPUs; the locality floor (>= 1.15x at the top scale) binds
//     always.
//   - determinism: within each node count, every shard count produced an
//     identical chaos ledger — the fingerprint fields must agree, or the
//     record itself witnesses a contract violation.
//
// TestShardsBenchRecord validates the committed record cheaply on every
// test run; the expensive regeneration (the 4096-node simulation runs for
// minutes at -shards 1) runs only with -update-bench-shards. CI re-proves
// bit-identity live at reduced scale on every push.

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"armcivt/internal/ckpt"
	"armcivt/internal/core"
	"armcivt/internal/figures"
)

var updateBenchShards = flag.Bool("update-bench-shards", false, "re-run the chaos shard-scaling grid and rewrite BENCH_shards.json (slow: minutes)")

const benchShardsPath = "BENCH_shards.json"

// benchShardsSchema versions the BENCH_shards.json layout.
const benchShardsSchema = "armcivt-bench-shards/v1"

// benchShardsNodes and benchShardsShards define the measured grid.
var (
	benchShardsNodes  = []int{512, 1024, 4096}
	benchShardsShards = []int{1, 2, 4, 8}
)

type benchShardsRecord struct {
	Schema string `json:"schema"`
	// HostCPUs is runtime.NumCPU() on the recording host — the context a
	// wall-clock number is meaningless without.
	HostCPUs int `json:"host_cpus"`
	// Workload pins the chaos cell every row shares: MFCG, heal armed,
	// crash-stop faults mid-storm.
	Workload struct {
		Topo       string `json:"topo"`
		PPN        int    `json:"ppn"`
		OpsPerRank int    `json:"ops_per_rank"`
		Crashes    int    `json:"crashes"`
		Heal       bool   `json:"heal"`
	} `json:"workload"`
	Rows []benchShardsRow `json:"rows"`
}

type benchShardsRow struct {
	Nodes   int     `json:"nodes"`
	Shards  int     `json:"shards"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup_vs_serial"`
	// Fingerprint fields: per the determinism contract these must be
	// identical across every shard count at the same node count.
	Issued    int `json:"issued"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

func benchShardsConfig(nodes, shards int) figures.ChaosConfig {
	return figures.ChaosConfig{
		Kind: core.MFCG, Nodes: nodes, PPN: 2,
		OpsPerRank: 20, Crashes: 8, Heal: true, Shards: shards,
	}
}

func TestShardsBenchRecord(t *testing.T) {
	if *updateBenchShards {
		regenerateBenchShards(t)
	}
	raw, err := os.ReadFile(benchShardsPath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-bench-shards): %v", benchShardsPath, err)
	}
	var rec benchShardsRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("parsing %s: %v", benchShardsPath, err)
	}
	if rec.Schema != benchShardsSchema {
		t.Fatalf("schema = %q, want %q", rec.Schema, benchShardsSchema)
	}
	if !rec.Workload.Heal || rec.Workload.Crashes == 0 {
		t.Error("record must come from the heal-armed chaos harness")
	}

	serial := map[int]benchShardsRow{} // nodes -> shards=1 row
	for _, r := range rec.Rows {
		if r.WallMS <= 0 {
			t.Errorf("nodes=%d shards=%d: non-positive wall_ms %.2f", r.Nodes, r.Shards, r.WallMS)
		}
		if r.Shards == 1 {
			serial[r.Nodes] = r
		}
	}
	maxNodes, bestAtMax := 0, 0.0
	for _, r := range rec.Rows {
		base, ok := serial[r.Nodes]
		if !ok {
			t.Fatalf("nodes=%d has no serial baseline row", r.Nodes)
		}
		// The determinism contract, as recorded: same ledger at every
		// shard count.
		if r.Issued != base.Issued || r.Completed != base.Completed || r.Failed != base.Failed {
			t.Errorf("nodes=%d shards=%d: ledger (issued=%d completed=%d failed=%d) differs from serial (issued=%d completed=%d failed=%d)",
				r.Nodes, r.Shards, r.Issued, r.Completed, r.Failed, base.Issued, base.Completed, base.Failed)
		}
		if r.Nodes > maxNodes {
			maxNodes, bestAtMax = r.Nodes, 0
		}
		if r.Nodes == maxNodes && r.Speedup > bestAtMax {
			bestAtMax = r.Speedup
		}
	}
	// The acceptance scale: 4096 nodes. The >= 2x wall-clock bar needs a
	// host that can actually run 8 lanes at once; on fewer cores only the
	// cache-locality floor is physically reachable, and the record must
	// still clear it.
	if maxNodes < 4096 {
		t.Errorf("record tops out at %d nodes; the acceptance scale is 4096", maxNodes)
	}
	if rec.HostCPUs < 1 {
		t.Errorf("host_cpus = %d; the record must pin the recording host's core count", rec.HostCPUs)
	}
	want := 1.15
	if rec.HostCPUs >= 8 {
		want = 2.0
	}
	if bestAtMax < want {
		t.Errorf("best speedup at %d nodes is %.2fx on a %d-core host; the record must demonstrate >= %.2fx",
			maxNodes, bestAtMax, rec.HostCPUs, want)
	}
}

func regenerateBenchShards(t *testing.T) {
	var rec benchShardsRecord
	rec.Schema = benchShardsSchema
	rec.HostCPUs = runtime.NumCPU()
	sample := benchShardsConfig(benchShardsNodes[0], 1)
	rec.Workload.Topo = sample.Kind.String()
	rec.Workload.PPN = sample.PPN
	rec.Workload.OpsPerRank = sample.OpsPerRank
	rec.Workload.Crashes = sample.Crashes
	rec.Workload.Heal = sample.Heal

	for _, nodes := range benchShardsNodes {
		var serialWall time.Duration
		for _, shards := range benchShardsShards {
			t0 := time.Now()
			res, err := figures.Chaos(benchShardsConfig(nodes, shards))
			if err != nil {
				t.Fatal(err)
			}
			wall := time.Since(t0)
			if shards == 1 {
				serialWall = wall
			}
			row := benchShardsRow{
				Nodes: nodes, Shards: shards,
				WallMS: float64(wall.Milliseconds()),
				Issued: res.Issued, Completed: res.Completed, Failed: res.Failed,
			}
			if wall > 0 {
				row.Speedup = float64(serialWall) / float64(wall)
			}
			rec.Rows = append(rec.Rows, row)
			t.Logf("nodes=%d shards=%d wall=%v speedup=%.2fx issued=%d completed=%d failed=%d",
				nodes, shards, wall, row.Speedup, res.Issued, res.Completed, res.Failed)
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.WriteFileAtomic(benchShardsPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", benchShardsPath)
}
