package armcivt_test

// The golden-export test pins the package's public API surface. It renders
// every exported declaration of package armcivt (signatures only, exported
// struct fields only, sorted) and compares the result against the ```go
// block between the api:begin/api:end markers in docs/API.md. Any breaking
// change — removing or renaming an exported identifier, changing a
// signature or an exported field — fails this test until the document is
// regenerated, which makes API breaks an explicit, reviewable act:
//
//	go test -run TestAPIGolden -update-api .
//
// Additive changes also fail (the surface is pinned byte-for-byte); that is
// deliberate, so docs/API.md can never fall behind the code.

import (
	"flag"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite the golden API block in docs/API.md")

const (
	apiDoc   = "docs/API.md"
	apiBegin = "<!-- api:begin -->"
	apiEnd   = "<!-- api:end -->"
)

func TestAPIGolden(t *testing.T) {
	got := renderAPI(t)
	raw, err := os.ReadFile(apiDoc)
	if err != nil {
		t.Fatalf("reading %s: %v", apiDoc, err)
	}
	doc := string(raw)
	bi := strings.Index(doc, apiBegin)
	ei := strings.Index(doc, apiEnd)
	if bi < 0 || ei < 0 || ei < bi {
		t.Fatalf("%s lacks %s / %s markers", apiDoc, apiBegin, apiEnd)
	}
	if *updateAPI {
		next := doc[:bi] + apiBegin + "\n```go\n" + got + "```\n" + doc[ei:]
		if err := os.WriteFile(apiDoc, []byte(next), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", apiDoc)
		return
	}
	golden := doc[bi+len(apiBegin) : ei]
	golden = strings.TrimPrefix(strings.TrimSpace(golden), "```go")
	golden = strings.TrimSuffix(strings.TrimSpace(golden), "```")
	golden = strings.TrimSpace(golden) + "\n"
	if strings.TrimSpace(got)+"\n" != golden {
		t.Errorf("exported API surface differs from the golden block in %s.\n"+
			"If this break is intentional, regenerate with:\n\n"+
			"\tgo test -run TestAPIGolden -update-api .\n\n"+
			"and review the %s diff like any other breaking change.\n%s",
			apiDoc, apiDoc, firstDiff(golden, strings.TrimSpace(got)+"\n"))
	}
}

// renderAPI parses the root package (tests excluded, comments dropped) and
// renders its exported surface: one formatted declaration per exported type,
// const/var spec, function and method — bodies stripped, unexported struct
// fields elided — sorted for stability across file reorderings.
func renderAPI(t *testing.T) string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["armcivt"]
	if !ok {
		t.Fatal("package armcivt not found in .")
	}
	var names []string
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)

	var decls []string
	emit := func(d ast.Decl) {
		var b strings.Builder
		if err := format.Node(&b, fset, d); err != nil {
			t.Fatalf("rendering decl: %v", err)
		}
		decls = append(decls, b.String())
	}
	for _, name := range names {
		for _, d := range pkg.Files[name].Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d.Recv) {
					continue
				}
				d.Body = nil
				emit(d)
			case *ast.GenDecl:
				var specs []ast.Spec
				for _, s := range d.Specs {
					switch s := s.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if st, ok := s.Type.(*ast.StructType); ok {
							st.Fields.List = exportedFields(st.Fields.List)
						}
						specs = append(specs, s)
					case *ast.ValueSpec:
						if anyExported(s.Names) {
							specs = append(specs, s)
						}
					}
				}
				if len(specs) == 0 {
					continue
				}
				d.Specs = specs
				emit(d)
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n\n") + "\n"
}

func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

func exportedFields(fields []*ast.Field) []*ast.Field {
	var out []*ast.Field
	for _, f := range fields {
		if len(f.Names) == 0 { // embedded
			typ := f.Type
			if star, ok := typ.(*ast.StarExpr); ok {
				typ = star.X
			}
			switch typ := typ.(type) {
			case *ast.Ident:
				if typ.IsExported() {
					out = append(out, f)
				}
			case *ast.SelectorExpr:
				out = append(out, f)
			}
			continue
		}
		if anyExported(f.Names) {
			out = append(out, f)
		}
	}
	return out
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return "first difference at golden line " + itoa(i+1) +
				":\n\tgolden: " + wl[i] + "\n\tcode:   " + gl[i]
		}
	}
	return "one surface is a prefix of the other (lengths " +
		itoa(len(wl)) + " vs " + itoa(len(gl)) + " lines)"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
