// Command contention regenerates Figures 6 and 7 of the paper: per-process
// time of vectored put (Fig 6) or atomic fetch-&-add (Fig 7) operations to
// rank 0, under no contention, 11% contention (every 9th process hammers
// rank 0) and 20% contention (every 5th).
//
// The paper's full-size setup is 256 nodes x 4 processes (1024 procs); the
// default here samples every 8th rank to keep the discrete-event run
// tractable while preserving per-point behaviour.
//
// Runs execute through the internal/sweep worker pool: -j N runs the
// (topology x level) grid on N workers and -cache DIR reuses previously
// computed points. Every simulation is an independent deterministic engine,
// so the printed tables are byte-identical at any -j. cmd/sweep generalizes
// this binary to arbitrary grids (message sizes, fault specs, seeds) and
// writes the BENCH_sweep.json perf record; see docs/SWEEP.md.
//
// With -metrics, every run additionally prints its observability snapshot
// (CHT busy fractions, credit-wait histogram, hot-node NIC utilization —
// see docs/OBSERVABILITY.md). With -trace FILE, all runs are written into
// one Chrome-trace JSON file (open in Perfetto or chrome://tracing), one
// trace process per run; -trace-sched adds scheduler run-slices. Tracing
// appends spans run-by-run, so -trace forces serial execution.
//
// With -faults SPEC, every run executes under the given fault schedule
// (grammar in docs/FAULTS.md, e.g. "link:3-7@t=1ms,cht:12@t=2ms"): the
// runtime enables request timeouts/retries and a deadlock watchdog, and the
// retry/reroute counters appear in the -metrics snapshot. -heal additionally
// arms heartbeat membership and online topology self-healing, which matters
// only when the schedule contains node: crash-stop faults — without them the
// flag is a documented no-op and the output is bit-identical.
//
// With -overload, the runtime arms the overload-protection layer (ECN-style
// congestion marking, AIMD injection pacing, the graceful-degradation
// ladder — see docs/OVERLOAD.md); the pacing_* and shed_* counters appear in
// the -metrics snapshot.
//
// With -ckpt-dir, every run snapshots itself at quiescent virtual-time
// boundaries (interval -ckpt-every) into the directory, and -resume restores
// runs an earlier interrupted invocation left mid-flight — output stays
// byte-identical to an uninterrupted run (see docs/CHECKPOINT.md).
//
// Usage:
//
//	contention -op vput|fadd [-level none|11|20|all] [-nodes 256] [-ppn 4]
//	           [-iters 20] [-sample 8] [-topos fcg,mfcg,hyperx:8x8x4,...]
//	           [-j N] [-cache DIR] [-csv] [-metrics]
//	           [-trace FILE [-trace-sched]] [-faults SPEC] [-heal]
//	           [-window N] [-agg] [-adaptive] [-overload]
//	           [-ckpt-dir DIR] [-ckpt-every DUR] [-ckpt-retain K] [-resume]
package main

import (
	"flag"
	"fmt"
	"os"

	"armcivt/internal/core"
	"armcivt/internal/faults"
	"armcivt/internal/figures"
	"armcivt/internal/obs"
	"armcivt/internal/sim"
	"armcivt/internal/stats"
	"armcivt/internal/sweep"
)

func main() {
	op := flag.String("op", "vput", "operation: vput (Fig 6) or fadd (Fig 7)")
	level := flag.String("level", "all", "contention: none, 11, 20, or all")
	nodes := flag.Int("nodes", 256, "number of nodes")
	ppn := flag.Int("ppn", 4, "processes per node")
	iters := flag.Int("iters", 20, "iterations per measured process")
	sample := flag.Int("sample", 8, "measure every k-th rank")
	topos := flag.String("topos", "fcg,mfcg,cfcg,hypercube", "topology specs to run: bare kinds (fcg,...,hyperx,dragonfly) or parameterized (hyperx:8x8x4, dragonfly:g=9,a=4,h=2)")
	jobs := flag.Int("j", 1, "worker-pool size for the (topology x level) grid")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory ('' disables)")
	csv := flag.Bool("csv", false, "emit CSV")
	metrics := flag.Bool("metrics", false, "print each run's observability metrics table")
	traceFile := flag.String("trace", "", "write a combined Chrome-trace JSON file (forces -j 1)")
	traceSched := flag.Bool("trace-sched", false, "include scheduler run-slices in the trace (verbose)")
	faultSpec := flag.String("faults", "", "fault schedule, e.g. link:3-7@t=1ms,cht:12@t=2ms (see docs/FAULTS.md)")
	window := flag.Int("window", 0, "nonblocking pipeline window per process (0 = blocking, the paper's shape)")
	agg := flag.Bool("agg", false, "enable small-op aggregation in the runtime")
	adaptive := flag.Bool("adaptive", false, "enable adaptive per-edge credit management")
	heal := flag.Bool("heal", false, "enable heartbeat membership and topology self-healing (no-op without node: faults)")
	overload := flag.Bool("overload", false, "enable the overload-protection layer: congestion marking, AIMD injection pacing and the degradation ladder (see docs/OVERLOAD.md)")
	shards := flag.Int("shards", 1, "conservative-parallel kernel shards per run (1 = serial; results are bit-identical, see docs/PARALLELISM.md)")
	ckptDir := flag.String("ckpt-dir", "", "mid-run checkpoint + journal directory ('' disables; see docs/CHECKPOINT.md)")
	ckptEvery := flag.Duration("ckpt-every", 0, "virtual-time capture interval (1ns of wall spec = 1ns virtual; 0 = default 1ms)")
	ckptRetain := flag.Int("ckpt-retain", 0, "snapshots retained per run (0 = default 3)")
	resume := flag.Bool("resume", false, "restore runs interrupted mid-flight from their newest snapshot in -ckpt-dir")
	flag.Parse()

	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "contention: -resume needs -ckpt-dir")
		os.Exit(2)
	}

	if *faultSpec != "" {
		if _, err := faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	specs, err := core.ParseSpecList(*topos)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var figName string
	switch *op {
	case "vput":
		figName = "Figure 6: vectored put"
	case "fadd":
		figName = "Figure 7: fetch-&-add"
	default:
		fmt.Fprintln(os.Stderr, "bad -op (want vput or fadd)")
		os.Exit(2)
	}

	var order []string
	switch *level {
	case "all":
		order = []string{"none", "11", "20"}
	case "none", "11", "20":
		order = []string{*level}
	default:
		fmt.Fprintln(os.Stderr, "bad -level (want none, 11, 20, or all)")
		os.Exit(2)
	}

	// Expand the (level x topology) grid into sweep points, in print order.
	// Topologies that cannot be built at this node count are skipped with a
	// notice, exactly as the per-figure loop did.
	grid := sweep.Grid{
		Experiment:  sweep.ExpContention,
		Op:          *op,
		Levels:      order,
		Nodes:       []int{*nodes},
		PPN:         *ppn,
		Iters:       *iters,
		SampleEvery: *sample,
		Faults:      []string{faultsOrNone(*faultSpec)},
		Metrics:     *metrics,
		Window:      *window,
		Aggs:        []string{onOff(*agg)},
		Adapts:      []string{onOff(*adaptive)},
		Heals:       []string{onOff(*heal)},
		Overloads:   []string{onOff(*overload)},
	}
	for _, spec := range specs {
		if _, err := spec.Build(*nodes); err != nil {
			fmt.Fprintf(os.Stderr, "skipping %v: %v\n", spec, err)
			continue
		}
		grid.Topos = append(grid.Topos, spec.String())
	}
	points, err := grid.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
	}
	runner := &sweep.Runner{Workers: *jobs, CacheDir: *cacheDir, Trace: tracer, Shards: *shards,
		Ckpt: sweep.CkptOptions{Dir: *ckptDir, Every: sim.Time(*ckptEvery), Retain: *ckptRetain, Resume: *resume}}
	if tracer != nil && *traceSched {
		// The generic executor doesn't know about scheduler slices; run
		// those through a thin wrapper that switches the flag on.
		runner.Exec = func(p sweep.Point, opts sweep.ExecOptions) sweep.Result {
			return executeWithSched(p, opts)
		}
	}
	results, _ := runner.Run(points)

	for _, g := range sweep.Groups(results) {
		pct := sweep.LevelName(g.Point.Level)
		tbl := stats.SeriesTable(
			fmt.Sprintf("%s to rank 0, %s — avg us/op per process rank", figName, pct),
			"rank", g.Series)
		if *csv {
			tbl.WriteCSV(os.Stdout)
		} else {
			tbl.Write(os.Stdout)
		}
		fmt.Println()
		sum := &stats.Table{
			Title:  fmt.Sprintf("summary (%s)", pct),
			Header: []string{"topology", "mean us", "p50 us", "p99 us", "max us"},
		}
		for _, s := range g.Series {
			sm := stats.Summarize(s.Y)
			sum.AddRow(s.Label, sm.Mean, sm.P50, sm.P99, sm.Max)
		}
		sum.Write(os.Stdout)
		fmt.Println()
		for _, snap := range g.Snapshots {
			if *csv {
				snap.WriteCSV(os.Stdout)
			} else {
				snap.Write(os.Stdout)
			}
			fmt.Println()
		}
	}
	for _, r := range results {
		if r.Err != "" {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
	}

	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (%d dropped); open in https://ui.perfetto.dev\n",
			tracer.Len(), *traceFile, tracer.Dropped())
	}
}

func faultsOrNone(spec string) string {
	if spec == "" {
		return "none"
	}
	return spec
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// executeWithSched mirrors sweep.Execute for the -trace-sched path: it
// rebuilds the contention config with scheduler-slice tracing enabled.
func executeWithSched(p sweep.Point, opts sweep.ExecOptions) sweep.Result {
	spec, err := core.ParseSpec(p.Topo)
	if err != nil {
		return sweep.Result{Point: p, Label: p.Label(), Err: err.Error()}
	}
	cfg := figures.ContentionConfig{
		Kind: spec.Kind, Topo: spec, Nodes: p.Nodes, PPN: p.PPN, Iters: p.Iters,
		ContenderEvery: p.ContenderEvery, VecSegs: p.VecSegs,
		VecSegLen: p.MsgSize, SampleEvery: p.SampleEvery,
		StreamLimit: p.StreamLimit, Seed: p.EffectiveSeed(),
		Window: p.Window, Aggregation: p.Agg == "on", AdaptiveCredits: p.Adapt == "on",
		Heal: p.Heal == "on", Overload: p.Overload == "on",
		Trace: opts.Trace, TracePID: p.Index, TraceSched: true,
	}
	if p.Op == "fadd" {
		cfg.Op = figures.OpFetchAdd
	}
	if p.Faults != "" {
		fspec, err := faults.ParseSpec(p.Faults)
		if err != nil {
			return sweep.Result{Point: p, Label: p.Label(), Err: err.Error()}
		}
		cfg.Faults = fspec
	}
	res := sweep.Result{Point: p, Label: p.Label()}
	s, err := figures.Contention(cfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.X, res.Y = s.X, s.Y
	return res
}
