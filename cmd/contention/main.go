// Command contention regenerates Figures 6 and 7 of the paper: per-process
// time of vectored put (Fig 6) or atomic fetch-&-add (Fig 7) operations to
// rank 0, under no contention, 11% contention (every 9th process hammers
// rank 0) and 20% contention (every 5th).
//
// The paper's full-size setup is 256 nodes x 4 processes (1024 procs); the
// default here samples every 8th rank to keep the discrete-event run
// tractable while preserving per-point behaviour.
//
// With -metrics, every run additionally prints its observability snapshot
// (CHT busy fractions, credit-wait histogram, hot-node NIC utilization —
// see docs/OBSERVABILITY.md). With -trace FILE, all runs are written into
// one Chrome-trace JSON file (open in Perfetto or chrome://tracing), one
// trace process per run; -trace-sched adds scheduler run-slices.
//
// With -faults SPEC, every run executes under the given fault schedule
// (grammar in docs/FAULTS.md, e.g. "link:3-7@t=1ms,cht:12@t=2ms"): the
// runtime enables request timeouts/retries and a deadlock watchdog, and the
// retry/reroute counters appear in the -metrics snapshot.
//
// Usage:
//
//	contention -op vput|fadd [-level none|11|20|all] [-nodes 256] [-ppn 4]
//	           [-iters 20] [-sample 8] [-topos fcg,mfcg,cfcg,hypercube]
//	           [-csv] [-metrics] [-trace FILE [-trace-sched]] [-faults SPEC]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"armcivt/internal/core"
	"armcivt/internal/faults"
	"armcivt/internal/figures"
	"armcivt/internal/obs"
	"armcivt/internal/sim"
	"armcivt/internal/stats"
)

func main() {
	op := flag.String("op", "vput", "operation: vput (Fig 6) or fadd (Fig 7)")
	level := flag.String("level", "all", "contention: none, 11, 20, or all")
	nodes := flag.Int("nodes", 256, "number of nodes")
	ppn := flag.Int("ppn", 4, "processes per node")
	iters := flag.Int("iters", 20, "iterations per measured process")
	sample := flag.Int("sample", 8, "measure every k-th rank")
	topos := flag.String("topos", "fcg,mfcg,cfcg,hypercube", "topologies to run")
	csv := flag.Bool("csv", false, "emit CSV")
	metrics := flag.Bool("metrics", false, "print each run's observability metrics table")
	traceFile := flag.String("trace", "", "write a combined Chrome-trace JSON file")
	traceSched := flag.Bool("trace-sched", false, "include scheduler run-slices in the trace (verbose)")
	faultSpec := flag.String("faults", "", "fault schedule, e.g. link:3-7@t=1ms,cht:12@t=2ms (see docs/FAULTS.md)")
	flag.Parse()

	var spec *faults.Spec
	if *faultSpec != "" {
		var err error
		if spec, err = faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var kinds []core.Kind
	for _, name := range strings.Split(*topos, ",") {
		k, err := core.ParseKind(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kinds = append(kinds, k)
	}
	var opSel figures.ContentionOp
	var figName string
	switch *op {
	case "vput":
		opSel, figName = figures.OpVectoredPut, "Figure 6: vectored put"
	case "fadd":
		opSel, figName = figures.OpFetchAdd, "Figure 7: fetch-&-add"
	default:
		fmt.Fprintln(os.Stderr, "bad -op (want vput or fadd)")
		os.Exit(2)
	}

	levels := map[string]int{"none": 0, "11": 9, "20": 5}
	var order []string
	switch *level {
	case "all":
		order = []string{"none", "11", "20"}
	case "none", "11", "20":
		order = []string{*level}
	default:
		fmt.Fprintln(os.Stderr, "bad -level (want none, 11, 20, or all)")
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
	}
	pid := 0

	scale := figures.ContentionConfig{Nodes: *nodes, PPN: *ppn, Iters: *iters, SampleEvery: *sample, Faults: spec}
	for _, lv := range order {
		every := levels[lv]
		pct := map[string]string{"none": "no contention", "11": "11% contention", "20": "20% contention"}[lv]
		var series []*stats.Series
		var snaps []*stats.Table
		for _, kind := range kinds {
			if _, err := core.New(kind, *nodes); err != nil {
				fmt.Fprintf(os.Stderr, "skipping %v: %v\n", kind, err)
				continue
			}
			c := scale
			c.Kind, c.ContenderEvery, c.Op = kind, every, opSel
			if *metrics {
				c.Metrics = obs.NewRegistry()
			}
			if tracer != nil {
				c.Trace, c.TracePID, c.TraceSched = tracer, pid, *traceSched
				pid++
			}
			s, err := figures.Contention(c)
			if err != nil {
				var werr *sim.WatchdogError
				if errors.As(err, &werr) {
					fmt.Fprint(os.Stderr, werr.Report.String())
				} else {
					fmt.Fprintln(os.Stderr, err)
				}
				os.Exit(1)
			}
			series = append(series, s)
			if *metrics {
				snaps = append(snaps, c.Metrics.Snapshot(
					fmt.Sprintf("metrics: %v, %s", kind, pct)))
			}
		}
		tbl := stats.SeriesTable(
			fmt.Sprintf("%s to rank 0, %s — avg us/op per process rank", figName, pct),
			"rank", series)
		if *csv {
			tbl.WriteCSV(os.Stdout)
		} else {
			tbl.Write(os.Stdout)
		}
		fmt.Println()
		sum := &stats.Table{
			Title:  fmt.Sprintf("summary (%s)", pct),
			Header: []string{"topology", "mean us", "p50 us", "p99 us", "max us"},
		}
		for _, s := range series {
			sm := stats.Summarize(s.Y)
			sum.AddRow(s.Label, sm.Mean, sm.P50, sm.P99, sm.Max)
		}
		sum.Write(os.Stdout)
		fmt.Println()
		for _, snap := range snaps {
			if *csv {
				snap.WriteCSV(os.Stdout)
			} else {
				snap.Write(os.Stdout)
			}
			fmt.Println()
		}
	}

	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (%d dropped); open in https://ui.perfetto.dev\n",
			tracer.Len(), *traceFile, tracer.Dropped())
	}
}
