// Command sweep runs parameter sweeps of the paper's experiments on a
// bounded worker pool with a content-addressed result cache, reproducing
// the Fig 5/6/7 grids end-to-end in one invocation.
//
// A sweep is declared by a grid spec (grammar in docs/SWEEP.md):
// semicolon-separated key=value fields whose values are comma-separated
// axis lists. Each cell of the cross-product is one deterministic
// simulation; the pool only changes wall-clock time, never results — the
// merged tables are byte-identical at every -j.
//
// Presets reproduce the paper's grids:
//
//	sweep -preset fig5                reproduce Figure 5 (memory scaling)
//	sweep -preset fig6 -j 8           reproduce Figure 6 (vectored put)
//	sweep -preset fig7 -j 8           reproduce Figure 7 (fetch-&-add)
//	sweep -preset fig6-ci             the reduced grid CI runs per PR
//	sweep -preset fig6-family         the reduced grid across all six
//	                                  topology families (incl. hyperx and
//	                                  dragonfly specs) CI smokes
//	sweep -preset fig6-agg-ci -assert-agg
//	                                  aggregation off/on paired grid; fails
//	                                  if aggregation regressed latency
//	sweep -preset chaos -j 8          crash/recover chaos grid, healing
//	                                  off vs on, three schedules per cell
//	sweep -preset chaos-ci            the reduced chaos grid CI smokes
//	sweep -preset overload -j 8       incast-storm overload grid, protection
//	                                  off vs on across storm intensities
//	                                  and tenant mixes
//	sweep -preset overload-ci         the reduced overload grid CI smokes
//
// Custom grids compose any axes, e.g. a topology × message-size × fault
// sweep:
//
//	sweep -grid 'exp=contention;topos=fcg,mfcg;nodes=64;ppn=2;iters=5;\
//	             msgsize=128,256,1024;levels=20;faults=none|cht:1@t=1ms' -j 8
//
// Results land in three places: merged figure-compatible tables on stdout
// (-csv for CSV), a BENCH_sweep.json perf record (wall-clock per point,
// speedup vs serial, cache hit rate — schema in docs/SWEEP.md), and the
// content-addressed cache, so re-running a sweep re-executes only points
// whose configuration changed. -metrics appends per-run observability
// snapshots and the sweep engine's own progress metrics; -trace writes all
// runs into one Chrome-trace file (forces -j 1, bypasses the cache).
//
// Usage:
//
// Crash resilience (docs/CHECKPOINT.md): -ckpt-dir DIR makes every executed
// point snapshot itself at quiescent virtual-time boundaries and journals
// point lifecycles into DIR; after an interruption (SIGKILL, OOM, power
// loss), re-running the same grid with -resume restores finished points
// from the cache and mid-flight points from their snapshots, producing
// byte-identical output to an uninterrupted sweep.
//
// Usage:
//
//	sweep [-preset fig5|fig6|fig7|fig6-ci|fig6-family|fig6-agg-ci|chaos|chaos-ci|overload|overload-ci]
//	      [-grid SPEC] [-j N]
//	      [-cache DIR] [-bench FILE] [-csv] [-metrics] [-trace FILE]
//	      [-ckpt-dir DIR] [-ckpt-every DUR] [-ckpt-retain K] [-resume]
//	      [-progress] [-list] [-assert-agg]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"armcivt/internal/obs"
	"armcivt/internal/sim"
	"armcivt/internal/stats"
	"armcivt/internal/sweep"
)

// presets are the paper's grids. fig6-ci is the reduced grid CI runs on
// every PR to accumulate the perf trajectory: small enough for minutes,
// contended enough that the pool pays off.
var presets = map[string]string{
	"fig5":    "exp=memscale;ppn=12;procs=768,1536,3072,6144,12288",
	"fig6":    "exp=contention;op=vput;nodes=256;ppn=4;iters=20;sample=8;levels=none,11,20",
	"fig7":    "exp=contention;op=fadd;nodes=256;ppn=4;iters=20;sample=8;levels=none,11,20",
	"fig6-ci": "exp=contention;op=vput;topos=fcg,mfcg,cfcg;nodes=64;ppn=2;iters=5;sample=8;stream=8;levels=none,11,20",
	// fig6-family runs the hot-spot point across every topology family,
	// including the generalized HyperX and Dragonfly specs, at the reduced
	// CI scale: the cross-family contention comparison of EXPERIMENTS.md.
	"fig6-family": "exp=contention;op=vput;topos=fcg,mfcg,cfcg,hypercube,hyperx,dragonfly;nodes=64;ppn=2;iters=5;sample=8;stream=8;levels=20",
	// fig6-agg-ci pairs every cell with aggregation off and on: a pipelined
	// (window=8) hot-spot grid of small vectored puts (64B segments keep the
	// payload under the aggregation threshold). CI runs it with -assert-agg,
	// which fails the build if any aggregated mean exceeds its baseline.
	"fig6-agg-ci": "exp=contention;op=vput;topos=fcg,mfcg,cfcg;nodes=64;ppn=2;iters=5;sample=8;stream=8;levels=20;msgsize=64;window=8;agg=off,on",
	// chaos runs randomized crash/recover schedules against every topology
	// with healing off and on: the off arm demonstrates lost paths on the
	// multi-hop topologies, the on arm asserts the self-healing invariants
	// (figures.Chaos fails the point if any is violated). chaos-ci is the
	// per-PR smoke: one schedule per topology at the acceptance scale.
	"chaos":    "exp=chaos;nodes=64;ppn=2;iters=20;crashes=1,2,3;heal=off,on;seeds=1,2,3",
	"chaos-ci": "exp=chaos;nodes=64;ppn=2;iters=10;crashes=3;heal=off,on;seeds=1",
	// overload runs the incast-storm harness across storm intensities and
	// tenant mixes, protection off and on: the off arm shows goodput
	// collapsing as storms stack up, the on arm holds it (figures.Overload
	// asserts the protection invariants per point). overload-ci is the
	// per-PR smoke: one storm intensity, both arms.
	"overload":    "exp=overload;nodes=64;ppn=2;iters=32;storm=1,2,4;tenants=2,4;overload=off,on",
	"overload-ci": "exp=overload;nodes=64;ppn=2;iters=16;storm=2;tenants=2;overload=off,on",
}

func main() {
	preset := flag.String("preset", "", "named grid: fig5, fig6, fig7, fig6-ci, fig6-family, fig6-agg-ci, chaos, chaos-ci, overload, or overload-ci")
	gridSpec := flag.String("grid", "", "grid spec (see docs/SWEEP.md); overrides -preset")
	j := flag.Int("j", runtime.NumCPU(), "worker-pool size (1 = serial)")
	cacheDir := flag.String("cache", ".sweep-cache", "result cache directory ('' disables caching)")
	benchPath := flag.String("bench", "BENCH_sweep.json", "perf-record output path ('' disables)")
	csv := flag.Bool("csv", false, "emit CSV tables")
	metrics := flag.Bool("metrics", false, "append per-run observability snapshots and sweep engine metrics")
	traceFile := flag.String("trace", "", "write all runs as one Chrome-trace JSON file (forces -j 1, bypasses cache)")
	progress := flag.Bool("progress", false, "report per-point progress and ETA on stderr")
	list := flag.Bool("list", false, "print the expanded points and cache keys without running")
	shards := flag.Int("shards", 1, "conservative-parallel kernel shards per run (1 = serial; results are bit-identical, see docs/PARALLELISM.md)")
	assertAgg := flag.Bool("assert-agg", false, "compare aggregation off/on pairs and fail if aggregation regressed latency (needs agg=off,on in the grid)")
	ckptDir := flag.String("ckpt-dir", "", "mid-point checkpoint + journal directory ('' disables; see docs/CHECKPOINT.md)")
	ckptEvery := flag.Duration("ckpt-every", 0, "virtual-time capture interval (1ns of wall spec = 1ns virtual; 0 = default 1ms)")
	ckptRetain := flag.Int("ckpt-retain", 0, "snapshots retained per point (0 = default 3)")
	resume := flag.Bool("resume", false, "restore points interrupted mid-flight from their newest snapshot in -ckpt-dir")
	flag.Parse()

	spec := *gridSpec
	if spec == "" {
		name := *preset
		if name == "" {
			name = "fig6"
		}
		var ok bool
		if spec, ok = presets[name]; !ok {
			fmt.Fprintf(os.Stderr, "unknown preset %q (want fig5, fig6, fig7, fig6-ci, fig6-family, fig6-agg-ci, chaos, chaos-ci, overload, or overload-ci)\n", name)
			os.Exit(2)
		}
	}
	grid, err := sweep.ParseGrid(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	grid.Metrics = *metrics
	points, err := grid.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		tbl := &stats.Table{
			Title:  fmt.Sprintf("%d points: %s", len(points), spec),
			Header: []string{"index", "key", "label", "level", "cache"},
		}
		for _, p := range points {
			state := "miss"
			if *cacheDir != "" {
				if _, err := os.Stat(fmt.Sprintf("%s/%s.json", *cacheDir, p.Key())); err == nil {
					state = "hit"
				}
			}
			tbl.AddRow(p.Index, p.Key()[:12], p.Label(), p.Level, state)
		}
		tbl.Write(os.Stdout)
		return
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "sweep: -resume needs -ckpt-dir (where the interrupted run left its snapshots)")
		os.Exit(2)
	}
	reg := obs.NewRegistry()
	runner := &sweep.Runner{
		Workers:  *j,
		CacheDir: *cacheDir,
		Metrics:  reg,
		Trace:    tracer,
		Shards:   *shards,
		Ckpt: sweep.CkptOptions{
			Dir:    *ckptDir,
			Every:  sim.Time(*ckptEvery),
			Retain: *ckptRetain,
			Resume: *resume,
		},
	}
	if *resume {
		if inflight, err := sweep.InFlight(*ckptDir); err == nil && len(inflight) > 0 {
			fmt.Fprintf(os.Stderr, "sweep: journal shows %d point(s) interrupted mid-flight; resuming from snapshots where possible\n", len(inflight))
		}
	}
	if *progress {
		runner.Progress = func(done, total int, st sweep.Stats, eta time.Duration) {
			fmt.Fprintf(os.Stderr, "sweep: %d/%d done (%d cached, %d failed), elapsed %s, eta %s\n",
				done, total, st.CacheHits, st.Failures,
				st.Wall.Round(time.Millisecond), eta.Round(time.Second))
		}
	}
	results, st := runner.Run(points)

	for i, g := range sweep.Groups(results) {
		if i > 0 {
			fmt.Println()
		}
		tbl := stats.SeriesTable(g.Title, g.XLabel, g.Series)
		if *csv {
			fmt.Printf("# %s\n", tbl.Title)
			tbl.WriteCSV(os.Stdout)
		} else {
			tbl.Write(os.Stdout)
		}
		if g.Contention {
			fmt.Println()
			sum := sweep.SummaryTable("summary: "+g.Title, g.Series)
			if *csv {
				sum.WriteCSV(os.Stdout)
			} else {
				sum.Write(os.Stdout)
			}
		}
		for _, snap := range g.Snapshots {
			fmt.Println()
			if *csv {
				snap.WriteCSV(os.Stdout)
			} else {
				snap.Write(os.Stdout)
			}
		}
	}
	if *metrics {
		fmt.Println()
		reg.Snapshot("sweep engine metrics").Write(os.Stdout)
	}

	fmt.Fprintf(os.Stderr,
		"sweep: %d points in %s with %d workers: %d executed, %d cached (%.0f%% hit rate), %d failed, speedup vs serial %.2fx\n",
		st.Points, st.Wall.Round(time.Millisecond), st.Workers, st.Executed,
		st.CacheHits, 100*st.CacheHitRate(), st.Failures, st.SpeedupVsSerial())
	if st.Resumed > 0 || st.CacheCorrupt > 0 {
		fmt.Fprintf(os.Stderr, "sweep: recovery: %d point(s) resumed from mid-point snapshots, %d corrupt cache entr(ies) evicted and re-executed\n",
			st.Resumed, st.CacheCorrupt)
	}

	if *benchPath != "" {
		if err := sweep.NewBench(spec, results, st).Write(*benchPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote perf record to %s\n", *benchPath)
	}
	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %d trace events to %s (%d dropped)\n",
			tracer.Len(), *traceFile, tracer.Dropped())
	}
	if st.Failures > 0 {
		for _, r := range results {
			if r.Err != "" {
				fmt.Fprintf(os.Stderr, "sweep: point %d (%s, %s) failed: %s\n",
					r.Point.Index, r.Label, r.Point.Level, r.Err)
			}
		}
		os.Exit(1)
	}
	if *assertAgg {
		cmps, err := sweep.CompareAgg(results)
		tbl := &stats.Table{
			Title:  "aggregation off/on comparison (mean us/op)",
			Header: []string{"series", "agg off", "agg on", "speedup"},
		}
		for _, c := range cmps {
			tbl.AddRow(c.Label, c.MeanOff, c.MeanOn, c.Speedup)
		}
		fmt.Println()
		tbl.Write(os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
