// Command vtreport regenerates the paper's complete evaluation in one run
// and writes a markdown report: Figure 5 (memory), Figures 6-7 (contention),
// Figure 8 (NAS LU) and Figures 9a/9b (NWChem proxies), plus the structural
// properties of Figures 1-4.
//
// The default -quick mode runs reduced-scale experiments (minutes); -full
// uses the paper-scale parameters documented in EXPERIMENTS.md.
//
// The contention grid (Figs 6-7: 2 ops x 3 levels x up to 4 topologies)
// executes through the internal/sweep worker pool: -j N parallelizes it
// across N workers. Every run is an independent deterministic simulation,
// so the report is byte-identical at any -j.
//
// With -metrics, each contention run (Figs 6-7) appends its observability
// snapshot to the report; with -trace FILE all contention runs are written
// into one Chrome-trace JSON file, one trace process per run (see
// docs/OBSERVABILITY.md; forces -j 1). With -faults SPEC, the contention
// runs execute under the given fault schedule (grammar in docs/FAULTS.md),
// exercising the timeout/retry/reroute machinery; -heal arms heartbeat
// membership and topology self-healing for those runs (a bit-identical
// no-op unless the schedule contains node: crash-stop faults); -overload
// arms the overload-protection layer (congestion marking, AIMD injection
// pacing and the degradation ladder — see docs/OVERLOAD.md).
//
// Usage:
//
//	vtreport [-quick|-full] [-j N] [-metrics] [-trace FILE] [-faults SPEC]
//	         [-heal] [-overload] > report.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"armcivt/internal/apps/ccsd"
	"armcivt/internal/apps/dft"
	"armcivt/internal/apps/lu"
	"armcivt/internal/core"
	"armcivt/internal/faults"
	"armcivt/internal/figures"
	"armcivt/internal/obs"
	"armcivt/internal/sim"
	"armcivt/internal/stats"
	"armcivt/internal/sweep"
)

type scale struct {
	memProcs   []int
	memPPN     int
	contention figures.ContentionConfig
	luProcs    []int
	luPPN      int
	luCfg      lu.Config
	dftCores   []int
	dftPPN     int
	dftCfg     dft.Config
	ccsdCores  []int
	ccsdPPN    int
	ccsdCfg    ccsd.Config
}

func quickScale() scale {
	return scale{
		memProcs:   []int{768, 1536, 3072, 6144, 12288},
		memPPN:     12,
		contention: figures.ContentionConfig{Nodes: 64, PPN: 2, Iters: 5, SampleEvery: 4, StreamLimit: 8},
		luProcs:    []int{48, 192},
		luPPN:      12,
		luCfg:      lu.Config{NX: 480, NY: 480, Iters: 6, CellFlop: 400},
		dftCores:   []int{512, 1024},
		dftPPN:     4,
		dftCfg:     dft.Config{N: 192, BlockSize: 8, SCFIters: 2, TaskFlop: 100 * sim.Microsecond, HotBlocks: 4, CounterBatch: 4},
		ccsdCores:  []int{256, 512},
		ccsdPPN:    4,
		ccsdCfg:    ccsd.Config{N: 512, BlockSize: 64, TasksPerRank: 2, TaskFlop: 2 * sim.Millisecond},
	}
}

func fullScale() scale {
	s := quickScale()
	s.contention = figures.ContentionConfig{Nodes: 256, PPN: 4, Iters: 20, SampleEvery: 8}
	s.luProcs = []int{192, 384, 768, 1536}
	s.luCfg = lu.Config{NX: 2040, NY: 2040, Iters: 12, CellFlop: 400}
	s.dftCores = []int{1536, 3072, 6144}
	s.dftPPN = 12
	s.dftCfg.SCFIters = 3
	s.ccsdCores = []int{768, 1536, 3072}
	s.ccsdPPN = 12
	s.ccsdCfg.N = 1024
	s.ccsdCfg.TaskFlop = 3 * sim.Millisecond
	return s
}

// contSection is one contention block of the report: a heading plus the
// half-open [start, end) range of the sweep's point list it renders.
type contSection struct {
	title      string
	start, end int
}

func main() {
	full := flag.Bool("full", false, "paper-scale parameters (slow)")
	jobs := flag.Int("j", 1, "worker-pool size for the contention grid (Figs 6-7)")
	metrics := flag.Bool("metrics", false, "append observability snapshots to the contention sections")
	traceFile := flag.String("trace", "", "write contention runs as one Chrome-trace JSON file (forces -j 1)")
	faultSpec := flag.String("faults", "", "fault schedule for the contention runs (see docs/FAULTS.md)")
	heal := flag.Bool("heal", false, "enable heartbeat membership and topology self-healing (no-op without node: faults)")
	overload := flag.Bool("overload", false, "enable the overload-protection layer for the contention runs (see docs/OVERLOAD.md)")
	shards := flag.Int("shards", 1, "conservative-parallel kernel shards per run (1 = serial; results are bit-identical, see docs/PARALLELISM.md)")
	flag.Parse()
	s := quickScale()
	mode := "quick"
	if *full {
		s = fullScale()
		mode = "full"
	}
	if *faultSpec != "" {
		if _, err := faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
	}
	w := os.Stdout
	started := time.Now()
	fmt.Fprintf(w, "# Virtual-topology evaluation report (%s mode)\n\n", mode)

	section(w, "Figures 1-4: topology structure (27 nodes)")
	structure(w, 27)

	section(w, "Figure 5: master-process memory vs processes")
	ss, err := figures.Fig5(s.memProcs, s.memPPN)
	check(err)
	stats.SeriesTable("memory (MBytes)", "processes", ss).Write(w)

	// Build the whole contention grid (3 levels x {Fig 6 vput, Fig 7 fadd} x
	// topologies) as one sweep point list, so -j parallelizes across every
	// section at once; each section then renders its own slice of the
	// results. Point order matches the report's section order, so trace pids
	// and output bytes are identical to the old per-run loop.
	var points []sweep.Point
	var sections []contSection
	for _, lv := range []struct {
		key   string
		every int
	}{{"none", 0}, {"11", 9}, {"20", 5}} {
		kinds := core.Kinds
		if lv.every > 0 {
			kinds = []core.Kind{core.FCG, core.MFCG, core.CFCG} // paper drops hypercube under load
		}
		name := sweep.LevelName(lv.key)
		for _, fig := range []struct {
			heading string
			op      string
		}{{"Figure 6 (vectored put), " + name, "vput"}, {"Figure 7 (fetch-&-add), " + name, "fadd"}} {
			sec := contSection{title: fig.heading, start: len(points)}
			for _, kind := range kinds {
				if _, err := core.New(kind, s.contention.Nodes); err != nil {
					continue // topology inapplicable at this node count
				}
				points = append(points, sweep.Point{
					Experiment:     sweep.ExpContention,
					Topo:           kind.String(),
					Nodes:          s.contention.Nodes,
					PPN:            s.contention.PPN,
					Op:             fig.op,
					Level:          lv.key,
					ContenderEvery: lv.every,
					Iters:          s.contention.Iters,
					SampleEvery:    s.contention.SampleEvery,
					StreamLimit:    s.contention.StreamLimit,
					Faults:         *faultSpec,
					Heal:           toggle(*heal),
					Overload:       toggle(*overload),
					Metrics:        *metrics,
				})
			}
			sec.end = len(points)
			sections = append(sections, sec)
		}
	}
	sweep.Reindex(points)
	runner := &sweep.Runner{Workers: *jobs, Trace: tracer, Shards: *shards}
	results, _ := runner.Run(points)

	for _, sec := range sections {
		section(w, sec.title)
		var series []*stats.Series
		for _, r := range results[sec.start:sec.end] {
			if r.Err != "" {
				fmt.Fprintln(os.Stderr, r.Err)
				os.Exit(1)
			}
			series = append(series, r.Series())
		}
		summary(w, series)
		for _, r := range results[sec.start:sec.end] {
			if r.Snapshot != nil {
				fmt.Fprintln(w)
				r.Snapshot.Write(w)
			}
		}
	}

	section(w, "Figure 8: NAS LU execution time")
	ls, err := figures.Fig8(s.luProcs, s.luPPN, *shards, s.luCfg)
	check(err)
	stats.SeriesTable("time (s)", "processes", ls).Write(w)

	section(w, "Figure 9(a): NWChem DFT SiOSi3 proxy")
	ds, err := figures.Fig9a(s.dftCores, s.dftPPN, *shards, s.dftCfg)
	check(err)
	stats.SeriesTable("time (s)", "cores", ds).Write(w)

	section(w, "Figure 9(b): NWChem CCSD(T) water proxy")
	cs2, err := figures.Fig9b(s.ccsdCores, s.ccsdPPN, *shards, s.ccsdCfg)
	check(err)
	stats.SeriesTable("time (s)", "cores", cs2).Write(w)

	section(w, "Topology advisor (Section VIII recommendations)")
	advisor(w)

	if tracer != nil {
		f, err := os.Create(*traceFile)
		check(err)
		check(tracer.WriteJSON(f))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (%d dropped)\n",
			tracer.Len(), *traceFile, tracer.Dropped())
	}

	fmt.Fprintf(w, "\nGenerated in %v.\n", time.Since(started).Round(time.Millisecond))
}

func section(w io.Writer, title string) { fmt.Fprintf(w, "\n## %s\n\n", title) }

// toggle renders a boolean flag (-heal, -overload) as the Point's canonical
// toggle value: "on" or, for off, the empty string that keeps pre-existing
// cache keys.
func toggle(b bool) string {
	if b {
		return "on"
	}
	return ""
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func structure(w io.Writer, n int) {
	tbl := &stats.Table{Header: []string{"topology", "max degree", "tree height", "root fan-in", "depth histogram", "deadlock-free"}}
	for _, kind := range core.AllKinds {
		t, err := core.New(kind, n)
		if err != nil {
			tbl.AddRow(kind.String(), "-", "-", "-", "-", "n/a")
			continue
		}
		pt := core.BuildPathTree(t, 0)
		df := "yes"
		if core.CheckDeadlockFree(t) != nil {
			df = "NO"
		}
		tbl.AddRow(kind.String(), core.MaxDegree(t), pt.Height(), pt.RootFanIn(),
			fmt.Sprint(pt.NodesAtDepth()), df)
	}
	tbl.Write(w)
}

func summary(w io.Writer, series []*stats.Series) {
	tbl := &stats.Table{Header: []string{"topology", "mean us/op", "p50", "p99", "max"}}
	for _, s := range series {
		sm := stats.Summarize(s.Y)
		tbl.AddRow(s.Label, sm.Mean, sm.P50, sm.P99, sm.Max)
	}
	tbl.Write(w)
}

func advisor(w io.Writer) {
	tbl := &stats.Table{Header: []string{"nodes", "ppn", "budget MB/node", "workload", "advice", "max hops", "buffers MB"}}
	for _, c := range []struct {
		nodes, ppn int
		budgetMB   int64
		w          core.Workload
		wname      string
	}{
		{1024, 12, 0, core.Neighborly, "neighborly"},
		{1024, 12, 0, core.Dynamic, "dynamic"},
		{1024, 12, 256, core.Bulk, "bulk"},
		{4096, 12, 64, core.Dynamic, "dynamic"},
		// 729 nodes: no hypercube exists and 16 MB/node excludes the other
		// paper topologies, so the advisor's frontier search answers with a
		// HyperX flat shape instead.
		{729, 12, 16, core.Dynamic, "dynamic"},
		{4096, 12, 4, core.Dynamic, "dynamic"},
	} {
		a := core.Recommend(c.nodes, c.ppn, c.budgetMB<<20, c.w, 4, 16<<10)
		tbl.AddRow(c.nodes, c.ppn, c.budgetMB, c.wname, a.Spec.String(), a.MaxHops,
			float64(a.BufferBytesPerNode)/(1<<20))
	}
	tbl.Write(w)
}
