// Command memscale regenerates Figure 5 of the paper: master-process memory
// consumption versus process count for FCG, MFCG, CFCG, and Hypercube, at
// the paper's constants (12 processes/node, 16 KB buffers, 4 per process).
//
// The (topology x process-count) cells run through the internal/sweep
// worker pool (-j N; serial by default) — each cell is an independent
// deterministic computation, so the table is byte-identical at any -j.
// cmd/sweep runs the same grid as `sweep -preset fig5`.
//
// With -scale N the command instead runs one large-N scaling point of the
// simulated runtime itself (docs/SCALING.md): N simulated nodes on a
// Hypercube carrying the Fig 5/6 incast workload, reporting wall clock,
// hot-path allocation rate, and live footprint next to the analytic Fig 5
// model for the same node. This is the CI smoke entry point for the
// BENCH_scale.json record:
//
//	memscale -scale 16384 -measure -json
//	memscale -scale 16384 -measure -max-live-mb 256   # nonzero exit on breach
//
// Usage:
//
// A -scale run can additionally checkpoint itself (-ckpt-dir, interval
// -ckpt-every) and restore an interrupted run (-resume) bit-identically —
// the fingerprint printed by a resumed run equals the uninterrupted one's
// (see docs/CHECKPOINT.md).
//
//	memscale [-ppn 12] [-procs 768,1536,3072,6144,12288] [-j N] [-csv]
//	         [-topos fcg,mfcg,cfcg,hypercube,hyperx:8x8x8,...]
//	memscale -scale N [-shards K] [-measure] [-max-live-mb M] [-json]
//	         [-ckpt-dir DIR] [-ckpt-every DUR] [-ckpt-retain K] [-resume]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"armcivt/internal/armci"
	"armcivt/internal/ckpt"
	"armcivt/internal/core"
	"armcivt/internal/figures"
	"armcivt/internal/sim"
	"armcivt/internal/stats"
	"armcivt/internal/sweep"
)

// scaleCkpt assembles the -scale run's checkpoint arming: snapshots keyed
// "memscale-<nodes>" in dir, optionally resuming from the newest survivor.
func scaleCkpt(nodes int, dir string, every time.Duration, retain int, resume bool) (*armci.CkptConfig, error) {
	if dir == "" {
		return nil, nil
	}
	cfg := &armci.CkptConfig{
		Dir:    dir,
		Every:  sim.Time(every),
		Retain: retain,
		RunKey: fmt.Sprintf("memscale-%d", nodes),
	}
	if resume {
		_, snap, err := ckpt.Latest(dir, cfg.RunKey)
		if err != nil {
			return nil, fmt.Errorf("memscale: loading snapshot: %w", err)
		}
		if snap == nil {
			return nil, fmt.Errorf("memscale: -resume found no %s snapshot in %s", cfg.RunKey, dir)
		}
		cfg.Resume = snap
	}
	return cfg, nil
}

// runScalePoint runs one docs/SCALING.md scaling point and reports it,
// either human-readable or as a row in the BENCH_scale.json shape. With a
// -max-live-mb ceiling it turns into a CI gate: a live footprint above the
// ceiling exits nonzero.
func runScalePoint(nodes, shards int, measure bool, maxLiveMB float64, jsonOut bool, ck *armci.CkptConfig) {
	t0 := time.Now()
	res, err := figures.Scale(figures.ScaleConfig{
		Nodes: nodes, Shards: shards, Measure: measure, Ckpt: ck,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(t0)

	if jsonOut {
		row := struct {
			Nodes          int     `json:"nodes"`
			WallMS         float64 `json:"wall_ms"`
			Mallocs        uint64  `json:"mallocs"`
			AllocsPerOp    float64 `json:"allocs_per_op"`
			LiveBytes      uint64  `json:"live_bytes"`
			Fingerprint    string  `json:"fingerprint"`
			MasterRSSBytes int64   `json:"master_rss_bytes"`
		}{
			Nodes: res.Nodes, WallMS: float64(wall.Milliseconds()),
			Mallocs: res.MallocsDelta, AllocsPerOp: res.AllocsPerOp,
			LiveBytes: res.LiveBytes, Fingerprint: fmt.Sprintf("%016x", res.Fingerprint),
			MasterRSSBytes: res.MasterRSS,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(row)
	} else {
		fmt.Printf("scale point: %d nodes, %d actives, %d ops (Hypercube, shards=%d)\n",
			res.Nodes, res.Actives, res.Ops, shards)
		fmt.Printf("  wall clock     %v\n", wall)
		fmt.Printf("  virtual time   %v\n", res.VirtualTime)
		fmt.Printf("  fingerprint    %016x\n", res.Fingerprint)
		if ck != nil {
			if ck.Resume != nil {
				fmt.Printf("  checkpoint     resumed from boundary %d (verified: %v), %d captures after\n",
					ck.Resume.Index, res.Ckpt.Verified, res.Ckpt.Captures)
			} else {
				fmt.Printf("  checkpoint     %d captures (last at boundary %d, %d bytes)\n",
					res.Ckpt.Captures, res.Ckpt.LastIndex, res.Ckpt.BytesLast)
			}
		}
		fmt.Printf("  analytic RSS   %.1f MB (Fig 5 model, target node)\n", float64(res.MasterRSS)/(1<<20))
		if measure {
			fmt.Printf("  allocs/op      %.1f (%d mallocs over the measured phase)\n", res.AllocsPerOp, res.MallocsDelta)
			fmt.Printf("  live bytes     %.1f MB after end-of-phase GC\n", float64(res.LiveBytes)/(1<<20))
		}
	}
	if measure && maxLiveMB > 0 {
		if live := float64(res.LiveBytes) / (1 << 20); live > maxLiveMB {
			fmt.Fprintf(os.Stderr, "memscale: live footprint %.1f MB exceeds the %.1f MB ceiling\n", live, maxLiveMB)
			os.Exit(1)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	ppn := flag.Int("ppn", 12, "processes per node")
	procsFlag := flag.String("procs", "768,1536,3072,6144,12288", "comma-separated process counts")
	toposFlag := flag.String("topos", "fcg,mfcg,cfcg,hypercube", "topology specs for the Fig 5 table: bare kinds or parameterized (hyperx:8x8x8, dragonfly:g=32,a=16,h=2)")
	jobs := flag.Int("j", 1, "worker-pool size for the (topology x processes) grid")
	shards := flag.Int("shards", 1, "conservative-parallel kernel shards per run (1 = serial; results are bit-identical, see docs/PARALLELISM.md)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	scale := flag.Int("scale", 0, "run one large-N scaling point on this many simulated nodes (a power of two) instead of the Fig 5 table; see docs/SCALING.md")
	measure := flag.Bool("measure", false, "with -scale: record hot-path allocs/op and live bytes (meaningful on the serial kernel only)")
	maxLiveMB := flag.Float64("max-live-mb", 0, "with -scale -measure: exit nonzero if live bytes exceed this many MB (CI footprint smoke)")
	jsonOut := flag.Bool("json", false, "with -scale: emit the point as a BENCH_scale.json-shaped row")
	ckptDir := flag.String("ckpt-dir", "", "with -scale: checkpoint directory ('' disables; see docs/CHECKPOINT.md)")
	ckptEvery := flag.Duration("ckpt-every", 0, "with -scale: virtual-time capture interval (1ns of wall spec = 1ns virtual; 0 = default 1ms)")
	ckptRetain := flag.Int("ckpt-retain", 0, "with -scale: snapshots retained (0 = default 3)")
	resume := flag.Bool("resume", false, "with -scale: restore from the newest snapshot in -ckpt-dir")
	flag.Parse()

	if *scale > 0 {
		ck, err := scaleCkpt(*scale, *ckptDir, *ckptEvery, *ckptRetain, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runScalePoint(*scale, *shards, *measure, *maxLiveMB, *jsonOut, ck)
		return
	}
	if *resume || *ckptDir != "" {
		fmt.Fprintln(os.Stderr, "memscale: -ckpt-dir/-resume apply to -scale runs only (the Fig 5 table is analytic)")
		os.Exit(2)
	}

	procs, err := parseInts(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -procs:", err)
		os.Exit(2)
	}
	for _, p := range procs {
		if p%*ppn != 0 {
			fmt.Fprintf(os.Stderr, "figures: %d processes not divisible by ppn %d\n", p, *ppn)
			os.Exit(1)
		}
	}
	specs, err := core.ParseSpecList(*toposFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	grid := sweep.Grid{Experiment: sweep.ExpMemscale, PPN: *ppn, Procs: procs}
	for _, spec := range specs {
		grid.Topos = append(grid.Topos, spec.String())
	}
	points, err := grid.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runner := &sweep.Runner{Workers: *jobs, Shards: *shards}
	results, _ := runner.Run(points)

	// One series per topology spec in flag order — specs whose every cell
	// was skipped still get their (empty) column, exactly as Fig5 renders
	// them.
	byKind := map[string]*stats.Series{}
	var series []*stats.Series
	for _, spec := range specs {
		s := &stats.Series{Label: spec.String()}
		byKind[spec.String()] = s
		series = append(series, s)
	}
	for _, r := range results {
		if r.Err != "" {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
		byKind[r.Label].Add(float64(r.Point.Procs), r.Value)
	}
	tbl := stats.SeriesTable(
		"Figure 5: master-process memory (MBytes) vs processes",
		"processes", series)
	if *csv {
		tbl.WriteCSV(os.Stdout)
	} else {
		tbl.Write(os.Stdout)
	}

	fmt.Println()
	fmt.Println("Buffer-driven RSS increment over the base footprint (paper: FCG +812 MB at 12,288 procs,")
	fmt.Println("cut 7.5x / 16.6x / 45x by MFCG / CFCG / Hypercube):")
	top := procs[len(procs)-1]
	fcgInc, err := figures.Fig5Increment(top, *ppn, core.FCG)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  FCG        +%7.1f MB\n", fcgInc)
	for _, kind := range []core.Kind{core.MFCG, core.CFCG, core.Hypercube} {
		inc, err := figures.Fig5Increment(top, *ppn, kind)
		if err != nil {
			fmt.Printf("  %-10s n/a (%v)\n", kind, err)
			continue
		}
		fmt.Printf("  %-10s +%7.1f MB  (%.1fx reduction)\n", kind, inc, fcgInc/inc)
	}
}
