// Command memscale regenerates Figure 5 of the paper: master-process memory
// consumption versus process count for FCG, MFCG, CFCG, and Hypercube, at
// the paper's constants (12 processes/node, 16 KB buffers, 4 per process).
//
// The (topology x process-count) cells run through the internal/sweep
// worker pool (-j N; serial by default) — each cell is an independent
// deterministic computation, so the table is byte-identical at any -j.
// cmd/sweep runs the same grid as `sweep -preset fig5`.
//
// Usage:
//
//	memscale [-ppn 12] [-procs 768,1536,3072,6144,12288] [-j N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"armcivt/internal/core"
	"armcivt/internal/figures"
	"armcivt/internal/stats"
	"armcivt/internal/sweep"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	ppn := flag.Int("ppn", 12, "processes per node")
	procsFlag := flag.String("procs", "768,1536,3072,6144,12288", "comma-separated process counts")
	jobs := flag.Int("j", 1, "worker-pool size for the (topology x processes) grid")
	shards := flag.Int("shards", 1, "conservative-parallel kernel shards per run (1 = serial; results are bit-identical, see docs/PARALLELISM.md)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	procs, err := parseInts(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -procs:", err)
		os.Exit(2)
	}
	for _, p := range procs {
		if p%*ppn != 0 {
			fmt.Fprintf(os.Stderr, "figures: %d processes not divisible by ppn %d\n", p, *ppn)
			os.Exit(1)
		}
	}
	grid := sweep.Grid{Experiment: sweep.ExpMemscale, PPN: *ppn, Procs: procs}
	points, err := grid.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runner := &sweep.Runner{Workers: *jobs, Shards: *shards}
	results, _ := runner.Run(points)

	// One series per topology kind in canonical order — kinds whose every
	// cell was skipped still get their (empty) column, exactly as Fig5
	// renders them.
	byKind := map[string]*stats.Series{}
	var series []*stats.Series
	for _, kind := range core.Kinds {
		s := &stats.Series{Label: kind.String()}
		byKind[kind.String()] = s
		series = append(series, s)
	}
	for _, r := range results {
		if r.Err != "" {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
		byKind[r.Label].Add(float64(r.Point.Procs), r.Value)
	}
	tbl := stats.SeriesTable(
		"Figure 5: master-process memory (MBytes) vs processes",
		"processes", series)
	if *csv {
		tbl.WriteCSV(os.Stdout)
	} else {
		tbl.Write(os.Stdout)
	}

	fmt.Println()
	fmt.Println("Buffer-driven RSS increment over the base footprint (paper: FCG +812 MB at 12,288 procs,")
	fmt.Println("cut 7.5x / 16.6x / 45x by MFCG / CFCG / Hypercube):")
	top := procs[len(procs)-1]
	fcgInc, err := figures.Fig5Increment(top, *ppn, core.FCG)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  FCG        +%7.1f MB\n", fcgInc)
	for _, kind := range []core.Kind{core.MFCG, core.CFCG, core.Hypercube} {
		inc, err := figures.Fig5Increment(top, *ppn, kind)
		if err != nil {
			fmt.Printf("  %-10s n/a (%v)\n", kind, err)
			continue
		}
		fmt.Printf("  %-10s +%7.1f MB  (%.1fx reduction)\n", kind, inc, fcgInc/inc)
	}
}
