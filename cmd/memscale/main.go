// Command memscale regenerates Figure 5 of the paper: master-process memory
// consumption versus process count for FCG, MFCG, CFCG, and Hypercube, at
// the paper's constants (12 processes/node, 16 KB buffers, 4 per process).
//
// Usage:
//
//	memscale [-ppn 12] [-procs 768,1536,3072,6144,12288] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"armcivt/internal/core"
	"armcivt/internal/figures"
	"armcivt/internal/stats"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	ppn := flag.Int("ppn", 12, "processes per node")
	procsFlag := flag.String("procs", "768,1536,3072,6144,12288", "comma-separated process counts")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	procs, err := parseInts(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -procs:", err)
		os.Exit(2)
	}
	series, err := figures.Fig5(procs, *ppn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tbl := stats.SeriesTable(
		"Figure 5: master-process memory (MBytes) vs processes",
		"processes", series)
	if *csv {
		tbl.WriteCSV(os.Stdout)
	} else {
		tbl.Write(os.Stdout)
	}

	fmt.Println()
	fmt.Println("Buffer-driven RSS increment over the base footprint (paper: FCG +812 MB at 12,288 procs,")
	fmt.Println("cut 7.5x / 16.6x / 45x by MFCG / CFCG / Hypercube):")
	top := procs[len(procs)-1]
	fcgInc, err := figures.Fig5Increment(top, *ppn, core.FCG)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  FCG        +%7.1f MB\n", fcgInc)
	for _, kind := range []core.Kind{core.MFCG, core.CFCG, core.Hypercube} {
		inc, err := figures.Fig5Increment(top, *ppn, kind)
		if err != nil {
			fmt.Printf("  %-10s n/a (%v)\n", kind, err)
			continue
		}
		fmt.Printf("  %-10s +%7.1f MB  (%.1fx reduction)\n", kind, inc, fcgInc/inc)
	}
}
