// Command topoviz prints the structural properties of the paper's virtual
// topologies (Figures 1-4): edge counts, degrees, request-path trees into a
// root, and LDF routes — plus the buffer-dependency deadlock check.
//
// Usage:
//
//	topoviz -n 27 [-root 0] [-topo all|fcg|mfcg|cfcg|hypercube]
package main

import (
	"flag"
	"fmt"
	"os"

	"armcivt/internal/core"
	"armcivt/internal/obs"
	"armcivt/internal/stats"
)

func main() {
	n := flag.Int("n", 16, "number of nodes")
	root := flag.Int("root", 0, "root node for the request-path tree")
	topoFlag := flag.String("topo", "all", "topology: all, fcg, mfcg, cfcg, hypercube")
	routes := flag.Bool("routes", false, "print every LDF route to the root")
	flag.Parse()

	kinds := core.Kinds
	if *topoFlag != "all" {
		k, err := core.ParseKind(*topoFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kinds = []core.Kind{k}
	}

	tbl := &stats.Table{
		Title:  fmt.Sprintf("Virtual topology structure, %d nodes (paper Figs 1-4)", *n),
		Header: []string{"topology", "shape", "degree(0)", "total edges", "tree height", "root fan-in", "avg hops", "diameter", "fwd share", "deadlock-free"},
	}
	for _, kind := range kinds {
		t, err := core.New(kind, *n)
		if err != nil {
			tbl.AddRow(kind.String(), "-", "-", "-", "-", "-", "-", "-", "-", fmt.Sprintf("n/a (%v)", err))
			continue
		}
		pt := core.BuildPathTree(t, *root)
		df := "yes"
		if err := core.CheckDeadlockFree(t); err != nil {
			df = "NO: " + err.Error()
		}
		shape := ""
		for i, s := range t.Shape() {
			if i > 0 {
				shape += "x"
			}
			shape += fmt.Sprint(s)
		}
		tbl.AddRow(kind.String(), shape, t.Degree(0), core.TotalEdges(t),
			pt.Height(), pt.RootFanIn(), core.AvgHops(t), core.Diameter(t),
			core.ForwarderShare(t, *root), df)

		if *routes {
			fmt.Printf("-- %v: routes into node %d --\n", t, *root)
			for v := 0; v < t.Nodes(); v++ {
				if v != *root {
					fmt.Printf("  %3d: %v\n", v, core.Route(t, v, *root))
				}
			}
		}
	}
	tbl.Write(os.Stdout)

	// The same analysis numbers again as an observability snapshot, in the
	// exact table format the runtime's -metrics flags produce, so topology
	// structure and run metrics can be diffed side by side (names are
	// documented in docs/OBSERVABILITY.md).
	reg := obs.NewRegistry()
	for _, kind := range kinds {
		t, err := core.New(kind, *n)
		if err != nil {
			continue
		}
		topo := obs.L("topo", kind.String())
		reg.Gauge("core_diameter_hops", topo).Set(float64(core.Diameter(t)))
		reg.Gauge("core_avg_hops", topo).Set(core.AvgHops(t))
		reg.Gauge("core_forwarder_share", topo).Set(core.ForwarderShare(t, *root))
		reg.Gauge("core_edges_total", topo).Set(float64(core.TotalEdges(t)))
		reg.Gauge("core_tree_height", topo).Set(float64(core.BuildPathTree(t, *root).Height()))
	}
	fmt.Println()
	reg.Snapshot(fmt.Sprintf("core analysis metrics, %d nodes, root %d", *n, *root)).Write(os.Stdout)

	fmt.Println()
	fmt.Println("Depth histograms of the request-path tree (paper Fig 4):")
	for _, kind := range kinds {
		t, err := core.New(kind, *n)
		if err != nil {
			continue
		}
		pt := core.BuildPathTree(t, *root)
		fmt.Printf("  %-10s %v\n", kind.String(), pt.NodesAtDepth())
	}
}
