// Command topoviz prints the structural properties of the paper's virtual
// topologies (Figures 1-4) and the generalized HyperX/Dragonfly families:
// edge counts, degrees, request-path trees into a root, and LDF routes —
// plus the buffer-dependency deadlock check.
//
// Usage:
//
//	topoviz -n 27 [-root 0] [-topo all|fcg|mfcg|cfcg|hypercube|hyperx|dragonfly]
//	topoviz -n 32 -topo hyperx:4x4x2
//	topoviz -n 36 -topo dragonfly:g=9,a=4,h=2
package main

import (
	"flag"
	"fmt"
	"os"

	"armcivt/internal/core"
	"armcivt/internal/obs"
	"armcivt/internal/stats"
)

func main() {
	n := flag.Int("n", 16, "number of nodes")
	root := flag.Int("root", 0, "root node for the request-path tree")
	topoFlag := flag.String("topo", "all", "topology spec: all, a bare kind (fcg, ..., hyperx, dragonfly), or parameterized (hyperx:4x4x2, dragonfly:g=9,a=4,h=2)")
	routes := flag.Bool("routes", false, "print every LDF route to the root")
	flag.Parse()

	var specs []core.Spec
	if *topoFlag == "all" {
		for _, k := range core.AllKinds {
			specs = append(specs, core.Spec{Kind: k})
		}
	} else {
		var err error
		specs, err = core.ParseSpecList(*topoFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// build memoizes topology construction per spec label so the three
	// sections below agree on instances.
	build := func(spec core.Spec) (core.Topology, error) { return spec.Build(*n) }

	tbl := &stats.Table{
		Title:  fmt.Sprintf("Virtual topology structure, %d nodes (paper Figs 1-4)", *n),
		Header: []string{"topology", "shape", "max degree", "total edges", "tree height", "root fan-in", "avg hops", "diameter", "fwd share", "deadlock-free"},
	}
	for _, spec := range specs {
		t, err := build(spec)
		if err != nil {
			tbl.AddRow(spec.String(), "-", "-", "-", "-", "-", "-", "-", "-", fmt.Sprintf("n/a (%v)", err))
			continue
		}
		pt := core.BuildPathTree(t, *root)
		df := "yes"
		if err := core.CheckDeadlockFree(t); err != nil {
			df = "NO: " + err.Error()
		}
		shape := ""
		for i, s := range t.Shape() {
			if i > 0 {
				shape += "x"
			}
			shape += fmt.Sprint(s)
		}
		tbl.AddRow(spec.String(), shape, core.MaxDegree(t), core.TotalEdges(t),
			pt.Height(), pt.RootFanIn(), core.AvgHops(t), core.Diameter(t),
			core.ForwarderShare(t, *root), df)

		if *routes {
			fmt.Printf("-- %v: routes into node %d --\n", t, *root)
			for v := 0; v < t.Nodes(); v++ {
				if v != *root {
					fmt.Printf("  %3d: %v\n", v, core.Route(t, v, *root))
				}
			}
		}
	}
	tbl.Write(os.Stdout)

	// The same analysis numbers again as an observability snapshot, in the
	// exact table format the runtime's -metrics flags produce, so topology
	// structure and run metrics can be diffed side by side (names are
	// documented in docs/OBSERVABILITY.md).
	reg := obs.NewRegistry()
	for _, spec := range specs {
		t, err := build(spec)
		if err != nil {
			continue
		}
		topo := obs.L("topo", spec.String())
		reg.Gauge("core_diameter_hops", topo).Set(float64(core.Diameter(t)))
		reg.Gauge("core_avg_hops", topo).Set(core.AvgHops(t))
		reg.Gauge("core_forwarder_share", topo).Set(core.ForwarderShare(t, *root))
		reg.Gauge("core_edges_total", topo).Set(float64(core.TotalEdges(t)))
		reg.Gauge("core_tree_height", topo).Set(float64(core.BuildPathTree(t, *root).Height()))
	}
	fmt.Println()
	reg.Snapshot(fmt.Sprintf("core analysis metrics, %d nodes, root %d", *n, *root)).Write(os.Stdout)

	fmt.Println()
	fmt.Println("Depth histograms of the request-path tree (paper Fig 4):")
	for _, spec := range specs {
		t, err := build(spec)
		if err != nil {
			continue
		}
		pt := core.BuildPathTree(t, *root)
		fmt.Printf("  %-22s %v\n", spec.String(), pt.NodesAtDepth())
	}
}
