// Command naslu regenerates Figure 8 of the paper: NAS LU execution time on
// a varying number of processes under all four virtual topologies.
//
// Usage:
//
//	naslu [-procs 192,384,768,1536] [-ppn 12] [-nx 408] [-iters 12] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"armcivt/internal/apps/lu"
	"armcivt/internal/figures"
	"armcivt/internal/sim"
	"armcivt/internal/stats"
)

func main() {
	procsFlag := flag.String("procs", "192,384,768,1536", "comma-separated process counts")
	ppn := flag.Int("ppn", 12, "processes per node (12 gives power-of-two node counts for Hypercube)")
	nx := flag.Int("nx", 2040, "global grid edge")
	iters := flag.Int("iters", 12, "SSOR iterations")
	cellFlop := flag.Int64("cellflop", 400, "per-cell compute cost (ns)")
	csv := flag.Bool("csv", false, "emit CSV")
	shards := flag.Int("shards", 1, "conservative-parallel kernel shards per run (1 = serial; results are bit-identical, see docs/PARALLELISM.md)")
	flag.Parse()

	var procs []int
	for _, p := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -procs:", err)
			os.Exit(2)
		}
		procs = append(procs, v)
	}
	cfg := lu.Config{NX: *nx, NY: *nx, Iters: *iters, CellFlop: sim.Time(*cellFlop)}
	series, err := figures.Fig8(procs, *ppn, *shards, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tbl := stats.SeriesTable("Figure 8: NAS LU execution time (s) vs processes", "processes", series)
	if *csv {
		tbl.WriteCSV(os.Stdout)
	} else {
		tbl.Write(os.Stdout)
	}
}
