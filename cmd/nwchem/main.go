// Command nwchem regenerates Figure 9 of the paper with the NWChem proxies:
// the hot-spot-prone DFT SiOSi3 model (Fig 9a, all four topologies) and the
// bulk-transfer CCSD(T) water model (Fig 9b, FCG vs MFCG).
//
// Usage:
//
//	nwchem -model dft  [-cores 768,1536,3072,6144] [-ppn 12] [-csv]
//	nwchem -model ccsd [-cores 768,1536,3072]      [-ppn 12] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"armcivt/internal/apps/ccsd"
	"armcivt/internal/apps/dft"
	"armcivt/internal/figures"
	"armcivt/internal/sim"
	"armcivt/internal/stats"
)

func main() {
	model := flag.String("model", "dft", "model: dft (Fig 9a) or ccsd (Fig 9b)")
	coresFlag := flag.String("cores", "", "comma-separated core counts (defaults per model)")
	ppn := flag.Int("ppn", 12, "processes per node")
	csv := flag.Bool("csv", false, "emit CSV")
	shards := flag.Int("shards", 1, "conservative-parallel kernel shards per run (1 = serial; results are bit-identical, see docs/PARALLELISM.md)")
	flag.Parse()

	defaults := map[string]string{"dft": "768,1536,3072,6144", "ccsd": "768,1536,3072"}
	if *coresFlag == "" {
		*coresFlag = defaults[*model]
	}
	var cores []int
	for _, p := range strings.Split(*coresFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -cores:", err)
			os.Exit(2)
		}
		cores = append(cores, v)
	}

	var series []*stats.Series
	var err error
	var title string
	switch *model {
	case "dft":
		cfg := dft.Config{N: 192, BlockSize: 8, SCFIters: 3, TaskFlop: 100 * sim.Microsecond, HotBlocks: 4, CounterBatch: 4}
		series, err = figures.Fig9a(cores, *ppn, *shards, cfg)
		title = "Figure 9(a): NWChem DFT SiOSi3 proxy — total execution time (s) vs cores"
	case "ccsd":
		cfg := ccsd.Config{N: 1024, BlockSize: 64, TasksPerRank: 2, TaskFlop: 3 * sim.Millisecond}
		series, err = figures.Fig9b(cores, *ppn, *shards, cfg)
		title = "Figure 9(b): NWChem CCSD(T) water proxy — total execution time (s) vs cores"
	default:
		fmt.Fprintln(os.Stderr, "bad -model (want dft or ccsd)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tbl := stats.SeriesTable(title, "cores", series)
	if *csv {
		tbl.WriteCSV(os.Stdout)
	} else {
		tbl.Write(os.Stdout)
	}
}
