package armcivt_test

// Facade tests for the topology-spec API: Options.Spec, ParseSpec /
// ParseSpecList re-exports, and Recommend with a pinned Spec. The family
// internals are covered in internal/core; these pin the public surface.

import (
	"bytes"
	"strings"
	"testing"

	"armcivt"
)

func TestClusterSpecSelection(t *testing.T) {
	spec, err := armcivt.ParseSpec("hyperx:4x4x2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := armcivt.NewCluster(armcivt.Options{Nodes: 32, PPN: 2, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if c.Topology().Kind() != armcivt.HyperX {
		t.Errorf("topology = %v, want HyperX", c.Topology().Kind())
	}
	c.Alloc("data", 4096)
	if err := c.Run(func(r *armcivt.Rank) {
		dst := (r.Rank() + 13) % r.N()
		payload := []byte{byte(r.Rank()), 0xCD}
		r.Put(dst, "data", 2*r.Rank(), payload)
		r.Barrier()
		if got := r.Get(dst, "data", 2*r.Rank(), 2); !bytes.Equal(got, payload) {
			t.Errorf("rank %d: got %v", r.Rank(), got)
		}
	}); err != nil {
		t.Fatal(err)
	}

	// A spec that cannot host the node count surfaces the build error.
	df, err := armcivt.ParseSpec("dragonfly:g=8,a=4,h=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := armcivt.NewCluster(armcivt.Options{Nodes: 33, PPN: 1, Spec: df}); err == nil {
		t.Error("dragonfly g=8,a=4 on 33 nodes accepted")
	}

	// The zero Spec defers to Options.Topology, so pre-spec callers are
	// byte-identical.
	c2, err := armcivt.NewCluster(armcivt.Options{Nodes: 27, PPN: 1, Topology: armcivt.CFCG})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Topology().Kind() != armcivt.CFCG {
		t.Errorf("zero Spec: topology = %v, want CFCG", c2.Topology().Kind())
	}
}

func TestParseSpecListFacade(t *testing.T) {
	specs, err := armcivt.ParseSpecList("mfcg,hyperx:8x8x4,dragonfly:g=9,a=4,h=2")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range specs {
		got = append(got, s.String())
	}
	want := "MFCG hyperx:8x8x4 dragonfly:g=9,a=4,h=2"
	if s := strings.Join(got, " "); s != want {
		t.Errorf("specs = %q, want %q", s, want)
	}
}

func TestRecommendPinnedSpec(t *testing.T) {
	spec, err := armcivt.ParseSpec("hyperx:4x4x4x4x4x4")
	if err != nil {
		t.Fatal(err)
	}
	a := armcivt.Recommend(armcivt.RecommendOptions{
		Nodes: 4096, PPN: 12, Spec: spec, MemBudget: 16 << 20,
	})
	if a.Kind != armcivt.HyperX || a.MaxHops != 6 {
		t.Errorf("advice = %+v", a)
	}
	want := int64(18) * 12 * 4 * (16 << 10) // degree 18 of the 4-ary 6-flat
	if a.BufferBytesPerNode != want {
		t.Errorf("footprint = %d, want %d", a.BufferBytesPerNode, want)
	}
	if !strings.Contains(a.Reason, "fits the budget") {
		t.Errorf("reason = %q", a.Reason)
	}

	// An infeasible pinned spec reports the failure instead of searching.
	bad := armcivt.TopologySpec{Kind: armcivt.Dragonfly, Groups: 3, RoutersPerGroup: 3}
	a = armcivt.Recommend(armcivt.RecommendOptions{Nodes: 10, PPN: 1, Spec: bad})
	if !strings.Contains(a.Reason, "infeasible") {
		t.Errorf("reason = %q", a.Reason)
	}

	// EvaluateSpec exposes the error form directly.
	if _, err := armcivt.EvaluateSpec(bad, armcivt.RecommendOptions{Nodes: 10, PPN: 1}); err == nil {
		t.Error("EvaluateSpec accepted a 9-node dragonfly over 10 nodes")
	}
}
