// Package armcivt is a library-level reproduction of "Virtual Topologies for
// Scalable Resource Management and Contention Attenuation in a Global
// Address Space Model on the Cray XT5" (Yu, Tipparaju, Que, Vetter —
// ICPP 2011).
//
// It provides, from scratch and in pure Go:
//
//   - The paper's virtual topologies — FCG, MFCG, CFCG, Hypercube — plus
//     the generalized HyperX (k-ary n-flat) and Dragonfly families, all with
//     deadlock-free Lowest-Dimension-First (LDF) forwarding, including the
//     extended rule for partially populated meshes, cubes and flats (any
//     node count). Parameterized family members are selected with a
//     TopologySpec ("hyperx:8x8x4", "dragonfly:g=9,a=4,h=2"; see ParseSpec).
//   - An ARMCI-style one-sided runtime (per-node communication helper
//     threads, per-edge request-buffer credit pools, request forwarding,
//     put/get/accumulate/vectored/strided/fetch-&-add/lock operations).
//   - A deterministic discrete-event model of a Cray XT5-class machine
//     (3-D torus, NIC serialization, hot-spot stream throttling) so that
//     resource-management and contention experiments run at scale on a
//     laptop, in virtual time.
//   - A Global Arrays-style layer (block-distributed dense arrays, section
//     get/put/accumulate, shared task counters) and proxies for the paper's
//     applications (NAS LU, NWChem DFT and CCSD(T)).
//
// The quickest way in:
//
//	cluster, _ := armcivt.NewCluster(armcivt.Options{Nodes: 16, PPN: 4, Topology: armcivt.MFCG})
//	cluster.Alloc("data", 1<<20)
//	err := cluster.Run(func(r *armcivt.Rank) {
//	    if r.Rank() == 0 {
//	        r.Put(5, "data", 0, []byte("hello"))
//	        fmt.Printf("%s\n", r.Get(5, "data", 0, 5))
//	    }
//	})
//
// See the examples/ directory and the cmd/ binaries that regenerate every
// figure of the paper's evaluation.
package armcivt

import (
	"armcivt/internal/armci"
	"armcivt/internal/core"
	"armcivt/internal/fabric"
	"armcivt/internal/ga"
	"armcivt/internal/sim"
)

// Kind identifies a virtual topology.
type Kind = core.Kind

// The paper's four virtual topologies.
const (
	// FCG is the default fully connected resource graph: O(N) buffers per
	// node, depth-1 request trees.
	FCG = core.FCG
	// MFCG is the meshed fully-connected graph: O(sqrt N) buffers, at
	// most one forwarding step; the paper's recommended topology.
	MFCG = core.MFCG
	// CFCG is the cubic fully-connected graph: O(cbrt N) buffers, at most
	// two forwarding steps.
	CFCG = core.CFCG
	// Hypercube uses O(log2 N) buffers at the cost of up to log2(N)-1
	// forwarding steps; it requires a power-of-two node count.
	Hypercube = core.Hypercube
)

// The generalized families. Both subsume the paper's four as special cases
// and take optional parameters through a TopologySpec.
const (
	// HyperX is the k-ary n-flat: all-to-all links along every axis of an
	// arbitrary shape, with generalized LDF routing and partial population.
	// FCG, MFCG, CFCG and Hypercube are its 1-D, 2-D, 3-D and 2-ary points.
	HyperX = core.HyperX
	// Dragonfly groups routers into all-to-all local groups joined by
	// global links; deadlock-free without virtual channels via peak-ordered
	// routing (at most 3 hops: global, then descending local).
	Dragonfly = core.Dragonfly
)

// Topology is a virtual resource-allocation graph with LDF routing.
type Topology = core.Topology

// NewTopology constructs the standard topology of a kind over n nodes
// (near-square meshes, near-cubes, power-of-two hypercubes).
func NewTopology(kind Kind, n int) (Topology, error) { return core.New(kind, n) }

// ParseKind converts a topology name ("FCG", "mfcg", "cube", ...) to a Kind.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// TopologySpec is a parameterized topology selection: a Kind plus an
// optional explicit shape (grid families) or Dragonfly group parameters.
// The zero TopologySpec means "unset" and defers to Options.Topology.
type TopologySpec = core.Spec

// ParseSpec parses the topology-spec grammar shared by every -topo flag:
// bare kind names ("mfcg"), explicit shapes ("hyperx:8x8x4", "mfcg:32x32"),
// or Dragonfly parameters ("dragonfly:g=9,a=4,h=2").
func ParseSpec(s string) (TopologySpec, error) { return core.ParseSpec(s) }

// ParseSpecList parses a comma-separated list of topology specs; Dragonfly
// parameter fragments ("a=4") attach to the spec before them.
func ParseSpecList(s string) ([]TopologySpec, error) { return core.ParseSpecList(s) }

// Rank is one simulated application process; all one-sided operations hang
// off it. See the methods of armci.Rank: Put/Get/Acc, PutV/GetV, PutS/GetS,
// FetchAdd, Lock/Unlock, Barrier, Fence and their non-blocking Nb forms.
type Rank = armci.Rank

// Handle tracks a non-blocking operation.
type Handle = armci.Handle

// Seg is one segment of a vectored operation.
type Seg = armci.Seg

// Stats holds a run's protocol counters (requests, forwards, credit waits,
// retries, aggregation batches, ...). See armci.Stats for every field.
type Stats = armci.Stats

// AggregationConfig tunes small-op aggregation (see armci.AggregationConfig).
type AggregationConfig = armci.AggregationConfig

// AdaptiveConfig tunes adaptive credit management (see armci.AdaptiveConfig).
type AdaptiveConfig = armci.AdaptiveConfig

// TimeoutError reports a one-sided operation abandoned after exhausting its
// retry budget (fault-injected runs only).
type TimeoutError = armci.TimeoutError

// NoRouteError reports a request dropped because every forwarding route to
// its target was down (fault-injected runs only).
type NoRouteError = armci.NoRouteError

// DeadlockError is returned by Run when every simulated process is blocked
// and no events remain: the job has wedged.
type DeadlockError = sim.DeadlockError

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Convenient virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// GlobalArray is a block-distributed dense 2-D float64 array (Global
// Arrays-style) living in the cluster's global address space.
type GlobalArray = ga.Array

// Matrix is the section-transfer buffer type used by GlobalArray.
type Matrix = ga.Matrix

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return ga.NewMatrix(rows, cols) }

// Counter is a shared fetch-&-add task counter (NWChem's nxtval).
type Counter = ga.Counter

// Workload characterizes an application's communication behaviour for
// Recommend.
type Workload = core.Workload

// Workload classes (see core.Recommend).
const (
	// Neighborly workloads (NAS LU-like) exchange with a fixed peer set.
	Neighborly = core.Neighborly
	// Dynamic workloads (NWChem DFT-like) create hot spots at scale.
	Dynamic = core.Dynamic
	// Bulk workloads (CCSD-like) move large blocks uniformly.
	Bulk = core.Bulk
)

// Advice is the outcome of Recommend.
type Advice = core.Advice

// RecommendOptions parameterizes Recommend. Zero fields take the paper's
// defaults, so the minimal call is
// Recommend(RecommendOptions{Nodes: n, PPN: p, Workload: w}).
type RecommendOptions struct {
	// Nodes is the number of compute nodes (required).
	Nodes int
	// PPN is processes per node (required).
	PPN int
	// Workload classifies the job's communication (default Neighborly).
	Workload Workload
	// Spec, when non-zero, pins the candidate: Recommend evaluates exactly
	// this spec against the budget instead of searching, and the returned
	// Advice carries the verdict in its Reason.
	Spec TopologySpec
	// MemBudget is bytes of communication memory available per node;
	// 0 means unlimited.
	MemBudget int64
	// BufsPerProc is the per-remote-process buffer count used to size each
	// candidate topology's pools (default 4, the paper's setting).
	BufsPerProc int
	// BufSize is the request buffer size in bytes (default 16 KB).
	BufSize int
}

// Recommend picks a virtual topology for a job following the paper's
// conclusions: FCG only when memory allows and no hot-spots are expected,
// MFCG as the general recommendation, CFCG/Hypercube under growing memory
// pressure — and, when none of the paper's four fits the budget, the
// generalized HyperX/Dragonfly frontier (higher-dimensional flats trade
// forwarding hops for smaller pools). With o.Spec set it evaluates that one
// candidate instead (see EvaluateSpec).
func Recommend(o RecommendOptions) Advice {
	if o.BufsPerProc == 0 {
		o.BufsPerProc = 4
	}
	if o.BufSize == 0 {
		o.BufSize = 16 << 10
	}
	if !o.Spec.IsZero() {
		a, err := core.Evaluate(o.Spec, o.Nodes, o.PPN, o.MemBudget, o.BufsPerProc, o.BufSize)
		if err != nil {
			return Advice{Kind: o.Spec.Kind, Spec: o.Spec,
				Reason: "requested spec is infeasible: " + err.Error()}
		}
		return a
	}
	return core.Recommend(o.Nodes, o.PPN, o.MemBudget, o.Workload, o.BufsPerProc, o.BufSize)
}

// EvaluateSpec reports the Advice for one explicit topology spec — its
// buffer footprint, hop bound, and whether it fits the budget — instead of
// searching the families. The error is non-nil when the spec cannot host
// o.Nodes at all.
func EvaluateSpec(spec TopologySpec, o RecommendOptions) (Advice, error) {
	if o.BufsPerProc == 0 {
		o.BufsPerProc = 4
	}
	if o.BufSize == 0 {
		o.BufSize = 16 << 10
	}
	return core.Evaluate(spec, o.Nodes, o.PPN, o.MemBudget, o.BufsPerProc, o.BufSize)
}

// Options configures a simulated cluster. Zero fields take defaults
// (DefaultConfig in package armci documents the full calibration).
type Options struct {
	// Nodes is the number of compute nodes (required).
	Nodes int
	// PPN is processes per node (required).
	PPN int
	// Topology selects the virtual topology (default FCG).
	Topology Kind
	// Spec, when non-zero, selects a parameterized family member
	// ("hyperx:8x8x4", "dragonfly:g=9,a=4,h=2") and takes precedence over
	// Topology. Parse one from the shared grammar with ParseSpec.
	Spec TopologySpec
	// CustomTopology overrides both with an explicit instance (e.g. a
	// skewed mesh from core.NewMesh).
	CustomTopology Topology
	// BufSize is the request buffer size in bytes (default 16 KB).
	BufSize int
	// BufsPerProc is the number of buffers per remote process (default 4).
	BufsPerProc int
	// Seed reseeds the engine RNG for workloads that draw from it;
	// simulations are deterministic either way. The zero value keeps the
	// engine's default seed unless SeedSet is true.
	Seed int64
	// SeedSet forces Seed to be applied even when it is 0, so an explicit
	// zero seed is distinguishable from "unset" (matching the semantics of
	// every Seed knob in this module).
	SeedSet bool
	// Aggregation configures small-op aggregation on the runtime's hot
	// path (off unless Enabled; see armci.AggregationConfig).
	Aggregation AggregationConfig
	// AdaptiveCredits configures adaptive per-edge credit management (off
	// unless Enabled; see armci.AdaptiveConfig).
	AdaptiveCredits AdaptiveConfig
}

// Cluster is a simulated ARMCI job: a runtime plus its virtual-time engine.
type Cluster struct {
	eng    *sim.Engine
	rt     *armci.Runtime
	closed bool
}

// NewCluster builds a cluster from options.
func NewCluster(opt Options) (*Cluster, error) {
	eng := sim.New()
	if opt.SeedSet || opt.Seed != 0 {
		eng.Seed(opt.Seed)
	}
	cfg := armci.DefaultConfig(opt.Nodes, opt.PPN)
	if opt.CustomTopology != nil {
		cfg.Topology = opt.CustomTopology
	} else {
		spec := opt.Spec
		if spec.IsZero() {
			spec = core.Spec{Kind: opt.Topology}
		}
		topo, err := spec.Build(opt.Nodes)
		if err != nil {
			return nil, err
		}
		cfg.Topology = topo
	}
	if opt.BufSize != 0 {
		cfg.BufSize = opt.BufSize
	}
	if opt.BufsPerProc != 0 {
		cfg.BufsPerProc = opt.BufsPerProc
	}
	cfg.Agg = opt.Aggregation
	cfg.Adaptive = opt.AdaptiveCredits
	rt, err := armci.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{eng: eng, rt: rt}, nil
}

// Alloc registers a named global allocation of bytes per rank.
func (c *Cluster) Alloc(name string, bytes int) { c.rt.Alloc(name, bytes) }

// NewGlobalArray registers a rows x cols global array before Run.
func (c *Cluster) NewGlobalArray(name string, rows, cols int) *GlobalArray {
	return ga.Create(c.rt, name, rows, cols)
}

// NewCounter registers a shared task counter hosted on the given rank.
func (c *Cluster) NewCounter(name string, owner int) *Counter {
	return ga.NewCounter(c.rt, name, owner)
}

// Group is a processor group (Global Arrays pgroup style) with its own
// barrier and collectives.
type Group = armci.Group

// NewGroup registers a processor group over the given ranks before Run.
func (c *Cluster) NewGroup(name string, ranks []int) *Group {
	return c.rt.NewGroup(name, ranks)
}

// Run executes body SPMD-style on every rank and drives the simulation to
// completion. It returns a *DeadlockError if the job wedges.
func (c *Cluster) Run(body func(r *Rank)) error { return c.rt.Run(body) }

// RunStats is Run plus the job's end-of-run counters, for callers that want
// both without a second Stats() call.
func (c *Cluster) RunStats(body func(r *Rank)) (Stats, error) {
	err := c.rt.Run(body)
	return c.rt.Stats(), err
}

// Close releases the simulation's remaining goroutines (helper-thread
// daemons, blocked ranks). Call it when done with the cluster in programs
// that create many of them; the cluster must not be running. Close is
// idempotent: extra calls are no-ops.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.rt.Shutdown()
}

// NRanks returns Nodes * PPN.
func (c *Cluster) NRanks() int { return c.rt.NRanks() }

// Topology returns the virtual topology in use.
func (c *Cluster) Topology() Topology { return c.rt.Topology() }

// Now returns the cluster's virtual clock.
func (c *Cluster) Now() Time { return c.eng.Now() }

// MasterRSS models the master process's resident set size on a node, the
// quantity Figure 5 of the paper plots.
func (c *Cluster) MasterRSS(node int) int64 { return c.rt.MasterRSS(node) }

// Runtime exposes the underlying runtime for advanced use (stats, memory
// model, direct fabric access).
func (c *Cluster) Runtime() *armci.Runtime { return c.rt }

// Stats returns runtime counters (requests, forwards, credit waits, ...).
func (c *Cluster) Stats() Stats { return c.rt.Stats() }

// Fabric returns the physical network model's configuration.
func (c *Cluster) Fabric() fabric.Config { return c.rt.Network().Config() }
